// Package core is the FluentPS system itself: parameter-server nodes,
// workers with sPush/sPull operations, and a liveness scheduler, wired
// over any transport (in-process channels or TCP).
//
// The design follows the paper directly:
//
//   - Every server owns one parameter shard and one condition-aware
//     synchronization controller (internal/syncmodel — Algorithm 1). There
//     is no central synchronization scheduler; servers advance their
//     shards' V_train independently, which is what makes push and pull
//     processes of different shards overlap (§III-D).
//   - Workers push scaled updates and pull fresh parameters per shard,
//     tagging both with their progress. A pull blocks the worker only for
//     the shards whose pull condition rejects it.
//   - The scheduler only monitors liveness and confirms membership; it is
//     not on the synchronization path.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/fluentps/fluentps/internal/clusterview"
	"github.com/fluentps/fluentps/internal/keyrange"
	"github.com/fluentps/fluentps/internal/kvstore"
	"github.com/fluentps/fluentps/internal/syncmodel"
	"github.com/fluentps/fluentps/internal/telemetry"
	"github.com/fluentps/fluentps/internal/transport"
)

// ServerConfig configures one FluentPS server node.
type ServerConfig struct {
	// Rank is this server's index in [0, NumServers).
	Rank int
	// NumWorkers is N, the number of workers pushing to this server.
	NumWorkers int
	// Layout and Assignment define the global key space and which keys
	// this server owns.
	Layout     *keyrange.Layout
	Assignment *keyrange.Assignment
	// Model and Drain select the shard's synchronization behaviour. The
	// zero Model is invalid; use syncmodel constructors (BSP, SSP, …).
	Model syncmodel.Model
	Drain syncmodel.DrainPolicy
	// Init, if non-nil, initializes the shard's parameter segments (all
	// servers and workers must agree on w0).
	Init func(k keyrange.Key, seg []float64)
	// Seed drives probabilistic pull conditions deterministically.
	Seed int64
	// DedupWindow is the number of recent request seqs remembered per
	// peer for duplicate suppression: a retransmitted or duplicated push
	// inside the window is re-acked but not re-applied, a duplicated
	// pull is re-answered (or left to its pending buffered request).
	// Zero selects DefaultDedupWindow; negative disables deduplication.
	DedupWindow int
	// ApplyQueueDepth is the buffer between the server's receive stage
	// and its apply stage (Run decodes and applies concurrently); zero
	// selects DefaultApplyQueueDepth.
	ApplyQueueDepth int
	// ApplyWorkers sets the apply-stage parallelism. 1 (or negative)
	// keeps the serial apply loop: one goroutine owns controller and
	// shard, messages are handled one at a time. Values above 1 enable
	// the wave-batched apply engine (applyengine.go): queued pushes and
	// pulls are drained in waves, same-key gradients coalesce into fused
	// batches, and per-stripe batches are applied by this many pool
	// goroutines. Zero derives the count from GOMAXPROCS. The count is
	// capped at the stripe count.
	ApplyWorkers int
	// ApplyStripes sets how many independently locked stripes the shard
	// is divided into (rounded up to a power of two, clamped to
	// [1, kvstore.MaxStripes]). Zero derives it from the resolved worker
	// count: 1 stripe for a serial server, 4× the workers otherwise (so
	// stripe collisions between concurrently applied batches stay rare).
	ApplyStripes int
	// Telemetry, when non-nil, receives the server's runtime metrics
	// (see core/telemetry.go for the schema). One registry per node; nil
	// (telemetry.Nop) disables collection — hot-path instruments become
	// nil-safe no-ops and no timestamps are taken.
	Telemetry *telemetry.Registry
	// AdaptEvery is the period of the adaptive sync controller's
	// re-evaluation tick (zero selects DefaultAdaptEvery). The tick always
	// runs but is a no-op unless the shard runs a KindAdaptive model —
	// configured at start or installed later via SetCondition.
	AdaptEvery time.Duration
	// Adaptive supplies the adaptive policy's knobs (hysteresis, spread
	// thresholds, AllowDrop, EWMA factor). Its staleness triple is ignored:
	// the bounds always come from the adaptive model's spec, which is the
	// single wire-visible source of truth.
	Adaptive syncmodel.AdaptiveConfig
	// View is the epoch-versioned cluster membership this server starts
	// from. When set it overrides Assignment (the view's assignment wins)
	// and defaults NumWorkers; requests stamped with an older epoch are
	// rejected with the current view. Nil synthesizes an epoch-1 bootstrap
	// view from Assignment/NumWorkers, with fencing effectively off for
	// unstamped traffic — existing static deployments run unchanged.
	View *clusterview.View
	// OpenEndpoint, when non-nil, lets this server bind additional node
	// identities on its transport — a promotion boots the dead rank's
	// shard in this process and needs an endpoint with that rank's id.
	// Nil disables hosting promotions (this server can still be a backup
	// donor for key transfer and serve fenced traffic).
	OpenEndpoint func(id transport.NodeID) (transport.Endpoint, error)
	// SnapshotEvery is the read-tier publish cadence in V_train ticks: a
	// new immutable parameter snapshot (kvstore.Snapshot) is published at
	// the first apply-wave boundary after V_train has advanced this much.
	// Zero selects 1 (every wave); negative freezes the epoch-1 boot
	// snapshot (RO pulls still work, at unbounded staleness).
	SnapshotEvery int
	// ReaderPool sizes the goroutine pool serving read-only pulls
	// (MsgPullRO) from the current snapshot, off the apply path. Zero
	// selects DefaultReaderPool; negative disables the pool — RO pulls
	// are then served inline by the apply loop (still lock-free, but
	// serialized behind training traffic).
	ReaderPool int
}

// DefaultAdaptEvery is the adaptive re-evaluation period used when
// ServerConfig.AdaptEvery is zero.
const DefaultAdaptEvery = 250 * time.Millisecond

// DefaultApplyQueueDepth is the receive→apply buffer used when
// ServerConfig.ApplyQueueDepth is zero.
const DefaultApplyQueueDepth = 64

// applyWorkers resolves ServerConfig.ApplyWorkers: zero means
// GOMAXPROCS, anything below one means serial.
func (cfg *ServerConfig) applyWorkers() int {
	w := cfg.ApplyWorkers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// applyStripes resolves ServerConfig.ApplyStripes: an explicit count is
// passed through (kvstore normalizes it); zero derives from the worker
// count — one stripe for a serial server, 4× workers for the engine.
func (cfg *ServerConfig) applyStripes() int {
	if cfg.ApplyStripes > 0 {
		return cfg.ApplyStripes
	}
	w := cfg.applyWorkers()
	if w == 1 {
		return 1
	}
	return 4 * w
}

// DefaultDedupWindow is the per-peer duplicate-suppression window used
// when ServerConfig.DedupWindow is zero. It must exceed the number of
// requests a worker can have unacknowledged plus the retransmission
// horizon; with synchronous workers that is a handful, so the default is
// generous.
const DefaultDedupWindow = 4096

// Server is one FluentPS parameter-server node. Run processes messages
// until the endpoint closes or a shutdown message arrives.
type Server struct {
	cfg   ServerConfig
	ep    transport.Endpoint
	shard *kvstore.Shard
	ctrl  *syncmodel.Controller
	keys  []keyrange.Key

	mu    sync.Mutex
	stats syncmodel.Stats

	// metrics holds the server's telemetry instruments (all no-ops when
	// cfg.Telemetry is nil); see core/telemetry.go for the schema.
	metrics serverMetrics

	// dedup remembers each peer's recent request seqs so transport-level
	// retries and duplicated frames never double-apply a push (see
	// ServerConfig.DedupWindow). Touched only by the Run goroutine.
	dedup     map[transport.NodeID]*dedupWindow
	dedupHits int

	// adapt drives the runtime-adaptive sync controller when the shard
	// runs a KindAdaptive model; nil otherwise. Touched only by the apply
	// goroutine (adaptive.go).
	adapt *syncmodel.AdaptiveDriver
	// started anchors the monotonic second clock the adaptive driver's
	// inter-push forecasts use.
	started time.Time
	// switches counts sync-model kind changes (admin- or adaptive-driven).
	switches int

	// reb tracks an in-progress elastic rebalance (rebalance.go).
	reb *rebalanceState

	// views tracks the installed cluster view; epoch caches its stamp for
	// the request fence. Both are owned by the apply goroutine (epoch is
	// read on every push/pull, so it must not take the tracker's lock).
	views *clusterview.Tracker
	epoch uint32
	// repl is the primary side of shard replication; replicas the backup
	// side, one passive replica per primary this server backs
	// (replication.go).
	repl     *replState
	replicas map[int]*replicaState
	// mig tracks keys owed to this server after a view change; earlyMig
	// buffers transfers that outran their view, held parks data-plane
	// requests touching in-flight keys (view.go).
	mig      *viewMigration
	earlyMig []*transport.Message
	held     []*transport.Message
	// subs are endpoints of shards promoted into this process; closed when
	// Run returns.
	subs []transport.Endpoint

	// Read-optimized serving tier (roserver.go): roQueue feeds the reader
	// pool, roStop ends it, lastPub is the V_train tick of the last
	// published snapshot (owned by the apply goroutine), roServed backs
	// ShardState.ROPulls from whichever goroutine served the pull.
	roQueue  chan roReq
	roStop   chan struct{}
	roWG     sync.WaitGroup
	lastPub  int
	roServed atomic.Uint64

	// debugLastVTrain backs the fluentdebug V_train monotonicity
	// assertion (assert.go); unused in release builds.
	debugLastVTrain int
}

// dedupOutcome records how a remembered request was resolved, which
// decides how its duplicate is answered.
type dedupOutcome uint8

const (
	// dedupPushDone: the push was consumed (applied, or dropped by a
	// drop-stragglers model); a duplicate is re-acked only.
	dedupPushDone dedupOutcome = iota
	// dedupPullPending: the pull sits in the DPR buffer; a duplicate is
	// ignored — the buffered original will be answered on release.
	dedupPullPending
	// dedupPullAnswered: the pull was answered; a duplicate (a retry
	// whose response was lost) is re-answered with current parameters.
	dedupPullAnswered
)

// dedupWindow is a bounded FIFO memory of one peer's request seqs.
type dedupWindow struct {
	seen  map[uint64]dedupOutcome
	order []uint64
	cap   int
}

func newDedupWindow(cap int) *dedupWindow {
	return &dedupWindow{seen: make(map[uint64]dedupOutcome), cap: cap}
}

func (d *dedupWindow) lookup(seq uint64) (dedupOutcome, bool) {
	out, ok := d.seen[seq]
	return out, ok
}

func (d *dedupWindow) record(seq uint64, out dedupOutcome) {
	if _, ok := d.seen[seq]; ok {
		d.seen[seq] = out
		return
	}
	if len(d.order) >= d.cap {
		evict := d.order[0]
		d.order = d.order[1:]
		delete(d.seen, evict)
	}
	d.seen[seq] = out
	d.order = append(d.order, seq)
}

// dedupLookup reports whether (from, seq) was seen before and with what
// outcome.
func (s *Server) dedupLookup(from transport.NodeID, seq uint64) (dedupOutcome, bool) {
	if s.dedup == nil {
		return 0, false
	}
	w, ok := s.dedup[from]
	if !ok {
		return 0, false
	}
	return w.lookup(seq)
}

// dedupRecord remembers (from, seq) with the given outcome, evicting the
// peer's oldest remembered seq when the window is full.
func (s *Server) dedupRecord(from transport.NodeID, seq uint64, out dedupOutcome) {
	if s.dedup == nil {
		return
	}
	w, ok := s.dedup[from]
	if !ok {
		w = newDedupWindow(s.dedupCap())
		s.dedup[from] = w
	}
	w.record(seq, out)
}

func (s *Server) dedupCap() int {
	if s.cfg.DedupWindow > 0 {
		return s.cfg.DedupWindow
	}
	return DefaultDedupWindow
}

// DedupHits returns how many duplicate requests the server has absorbed.
func (s *Server) DedupHits() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats.DedupHits
}

// SaveShard checkpoints the server's parameter shard to w. Call it only
// while the server is quiesced (no in-flight pushes or pulls) — e.g.
// between training phases or after workers stopped; the snapshot contains
// the shard segments and update counters, restorable via
// NewServerFromCheckpoint.
func (s *Server) SaveShard(w io.Writer) error { return s.shard.Save(w) }

// NewServerFromCheckpoint builds a replacement server whose shard state
// comes from a checkpoint written by SaveShard, instead of cfg.Init. The
// checkpoint's keys must match the assignment's keys for cfg.Rank. The
// synchronization controller starts fresh; resume training from a
// quiesced round boundary (workers restart their progress counters).
func NewServerFromCheckpoint(ep transport.Endpoint, cfg ServerConfig, r io.Reader) (*Server, error) {
	srv, err := NewServer(ep, cfg)
	if err != nil {
		return nil, err
	}
	shard, err := kvstore.LoadStripedShard(r, cfg.Layout, cfg.applyStripes())
	if err != nil {
		return nil, err
	}
	want := cfg.Assignment.KeysOf(cfg.Rank)
	got := shard.Keys()
	if len(want) != len(got) {
		return nil, fmt.Errorf("core: checkpoint has %d keys, assignment gives server %d %d",
			len(got), cfg.Rank, len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			return nil, fmt.Errorf("core: checkpoint key %d does not match assignment key %d", got[i], want[i])
		}
	}
	srv.shard = shard
	// The boot snapshot published by NewServer belongs to the discarded
	// shard; the restored one needs its own epoch 1.
	srv.metrics.snapshotEpoch.Set(int64(shard.PublishSnapshot(0).Epoch))
	return srv, nil
}

// NewServer builds a server over the given endpoint. The endpoint's id
// must be transport.Server(cfg.Rank).
func NewServer(ep transport.Endpoint, cfg ServerConfig) (*Server, error) {
	if cfg.Model.Pull == nil || cfg.Model.Push == nil {
		return nil, fmt.Errorf("core: server %d has no synchronization model", cfg.Rank)
	}
	view := cfg.View
	if view != nil {
		if err := view.Validate(cfg.Layout); err != nil {
			return nil, fmt.Errorf("core: server %d: %w", cfg.Rank, err)
		}
		cfg.Assignment = view.Assignment
		if cfg.NumWorkers == 0 {
			cfg.NumWorkers = view.NumWorkers()
		}
	}
	if cfg.NumWorkers <= 0 {
		return nil, fmt.Errorf("core: server %d configured with %d workers", cfg.Rank, cfg.NumWorkers)
	}
	if got, want := ep.ID(), transport.Server(cfg.Rank); got != want {
		return nil, fmt.Errorf("core: endpoint id %s does not match server rank %d", got, cfg.Rank)
	}
	keys := cfg.Assignment.KeysOf(cfg.Rank)
	s := &Server{
		cfg:   cfg,
		ep:    ep,
		shard: kvstore.NewStripedShard(cfg.Layout, keys, cfg.Init, cfg.applyStripes()),
		ctrl: syncmodel.New(cfg.NumWorkers, cfg.Model, cfg.Drain,
			rand.New(rand.NewSource(cfg.Seed^int64(cfg.Rank+1)))),
		keys:    keys,
		started: time.Now(),
	}
	s.metrics = newServerMetrics(cfg.Telemetry)
	if spec, ok := syncmodel.SpecOf(cfg.Model); ok && spec.Kind == syncmodel.KindAdaptive {
		s.installAdaptive(spec)
	}
	if cfg.DedupWindow >= 0 {
		s.dedup = make(map[transport.NodeID]*dedupWindow)
	}
	if view == nil {
		// Static deployments get a synthesized epoch-1 view: fencing is
		// inert for their unstamped traffic, and no member has an address
		// or backup to speak of.
		view = clusterview.Bootstrap("",
			make([]string, cfg.Assignment.NumServers()),
			make([]string, cfg.NumWorkers),
			cfg.Assignment, 1)
	}
	s.views = clusterview.NewTracker(view)
	s.epoch = view.EpochStamp()
	s.metrics.viewEpoch.Set(int64(view.Epoch))
	s.repl = &replState{backup: view.BackupOf(cfg.Rank), needSnapshot: true}
	s.replicas = make(map[int]*replicaState)
	// The boot snapshot (epoch 1, V_train 0) exists before Run: the RO
	// path never has to fall back to the live shard, and HandleRO streams
	// attached before Run still get answers.
	boot := s.shard.PublishSnapshot(0)
	s.metrics.snapshotEpoch.Set(int64(boot.Epoch))
	if cfg.ReaderPool >= 0 {
		s.roQueue = make(chan roReq, roQueueDepth(cfg.readerPool()))
		s.roStop = make(chan struct{})
	}
	return s, nil
}

// Keys returns the keys this server owns.
func (s *Server) Keys() []keyrange.Key { return s.keys }

// Stats returns a snapshot of the shard's synchronization counters. It is
// safe to call concurrently with Run; the snapshot is refreshed after
// every handled message.
func (s *Server) Stats() syncmodel.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *Server) snapshotStats() {
	s.assertVTrainMonotonic()
	st := s.ctrl.Stats()
	st.DedupHits = s.dedupHits
	s.mu.Lock()
	s.stats = st
	s.mu.Unlock()
	if s.metrics.on {
		// Gauges are refreshed after every handled message, so a scrape
		// between messages sees the controller's latest view without ever
		// touching controller state off the apply goroutine.
		minP, maxP := s.ctrl.MinProgress(), s.ctrl.MaxProgress()
		s.metrics.vtrain.Set(int64(s.ctrl.VTrain()))
		s.metrics.minProgress.Set(int64(minP))
		s.metrics.maxProgress.Set(int64(maxP))
		s.metrics.skew.Set(int64(maxP - minP))
		s.metrics.dprDepth.Set(int64(s.ctrl.Buffered()))
		if spec, ok := s.ctrl.Spec(); ok {
			s.metrics.syncStaleness.Set(int64(stalenessOf(spec)))
		}
	}
}

// Run processes requests until the endpoint closes or MsgShutdown
// arrives. It runs as a two-stage pipeline: a receive goroutine drains
// the endpoint (on TCP that is where frames are decoded) into a bounded
// queue, and the calling goroutine applies — so decoding the next batch
// of messages overlaps with shard/controller work instead of serializing
// behind it. The apply stage remains the single owner of controller and
// dedup state, preserving the per-peer FIFO the dedup windows rely on;
// with ApplyWorkers > 1 it additionally fans gradient batches out to a
// pool over the striped shard (see applyengine.go), staying sole owner
// of everything else.
func (s *Server) Run() error {
	depth := s.cfg.ApplyQueueDepth
	if depth <= 0 {
		depth = DefaultApplyQueueDepth
	}
	queue := make(chan queuedMsg, depth)
	if s.metrics.on {
		s.cfg.Telemetry.GaugeFunc("server.apply_queue_depth", func() int64 {
			return int64(len(queue))
		})
	}
	// The reader pool serves MsgPullRO from published snapshots, fully off
	// the apply path; it drains nothing the apply stage needs, so it stops
	// last (after the receive goroutine can no longer submit to it).
	if s.roQueue != nil {
		for i := 0; i < s.cfg.readerPool(); i++ {
			s.roWG.Add(1)
			go s.roWorker()
		}
		defer func() {
			close(s.roStop)
			s.roWG.Wait()
		}()
	}
	recvErr := make(chan error, 1)
	applyDone := make(chan struct{})
	go func() {
		for {
			msg, err := s.ep.Recv()
			if err != nil {
				recvErr <- err
				close(queue)
				return
			}
			if msg.Type == transport.MsgPullRO && s.roQueue != nil {
				// Read-only pulls bypass the apply queue entirely: the
				// reader pool answers them from the current snapshot, and
				// a full pool queue sheds them right here with a
				// retry-after instead of growing anything.
				s.submitRO(msg, s.ep)
				continue
			}
			q := queuedMsg{msg: msg}
			if s.metrics.on {
				q.at = time.Now()
			}
			select {
			case queue <- q:
			case <-applyDone:
				// The apply stage returned (shutdown or handler error);
				// drop the message and stop feeding.
				transport.ReleaseReceived(msg)
				return
			}
		}
	}()
	defer close(applyDone)
	defer func() {
		// Shards promoted into this process live exactly as long as it does.
		for _, sub := range s.subs {
			_ = sub.Close()
		}
	}()
	// A backup configured at startup gets its first snapshot before any
	// wave can reference it.
	if err := s.replTick(); err != nil {
		return err
	}
	var (
		shutdown bool
		err      error
	)
	if workers := s.cfg.applyWorkers(); workers > 1 {
		shutdown, err = s.runBatched(queue, workers)
	} else {
		shutdown, err = s.runSerial(queue)
	}
	if err != nil {
		if errors.Is(err, transport.ErrClosed) {
			// The endpoint was closed under a mid-flight handler (a kill
			// or harness teardown); that is a shutdown, not a fault.
			return nil
		}
		return err
	}
	if shutdown {
		return nil
	}
	// The queue closed: the receive stage hit an endpoint error.
	err = <-recvErr
	if err == transport.ErrClosed {
		return nil
	}
	return fmt.Errorf("core: server %d recv: %w", s.cfg.Rank, err)
}

// runSerial is Run's apply stage when ApplyWorkers ≤ 1: the original
// one-message-at-a-time loop, plus the periodic adaptive re-evaluation
// tick (a no-op unless the shard runs an adaptive model).
func (s *Server) runSerial(queue chan queuedMsg) (shutdown bool, err error) {
	tick := time.NewTicker(s.adaptEvery())
	defer tick.Stop()
	for {
		select {
		case q, ok := <-queue:
			if !ok {
				return false, nil
			}
			if s.metrics.on {
				s.metrics.applyWait.Observe(time.Since(q.at))
			}
			shutdown, err := s.apply(q.msg)
			if err != nil || shutdown {
				return shutdown, err
			}
			s.maybePublishSnapshot()
		case <-tick.C:
			if err := s.reevaluate(); err != nil {
				return false, err
			}
			if err := s.replTick(); err != nil {
				return false, err
			}
		}
	}
}

// queuedMsg is one message in the receive→apply queue, stamped with its
// enqueue time when telemetry is on (the apply-queue-wait histogram).
type queuedMsg struct {
	msg *transport.Message
	at  time.Time
}

// apply dispatches one message. Receiver-owned pooled messages (TCP
// frames, handed-off pointers) are recycled after their handler returns —
// except MsgMigrate when handleMigrate buffers it until its rebalance or
// view arrives, and pushes/pulls held while their keys are in flight
// during a migration.
func (s *Server) apply(msg *transport.Message) (shutdown bool, err error) {
	switch msg.Type {
	case transport.MsgPush:
		if s.holdForMigration(msg) {
			s.holdMsg(msg)
			return false, nil
		}
		err = s.handlePush(msg)
		transport.ReleaseReceived(msg)
		if err == nil {
			s.snapshotStats()
		}
	case transport.MsgPull:
		if s.holdForMigration(msg) {
			s.holdMsg(msg)
			return false, nil
		}
		err = s.handlePull(msg)
		transport.ReleaseReceived(msg)
		if err == nil {
			s.snapshotStats()
		}
	case transport.MsgSetCond:
		err = s.handleSetCond(msg)
		transport.ReleaseReceived(msg)
		if err == nil {
			s.snapshotStats()
		}
	case transport.MsgRebalance:
		err = s.handleRebalance(msg)
		transport.ReleaseReceived(msg)
	case transport.MsgMigrate:
		var retained bool
		retained, err = s.handleMigrate(msg)
		if !retained {
			transport.ReleaseReceived(msg)
		}
	case transport.MsgView:
		err = s.handleView(msg)
		transport.ReleaseReceived(msg)
	case transport.MsgViewReq:
		err = s.handleViewReq(msg)
		transport.ReleaseReceived(msg)
	case transport.MsgReplicate:
		err = s.handleReplicate(msg)
		transport.ReleaseReceived(msg)
	case transport.MsgReplicateAck:
		err = s.handleReplicateAck(msg)
		transport.ReleaseReceived(msg)
	case transport.MsgPromote:
		err = s.handlePromote(msg)
		transport.ReleaseReceived(msg)
	case transport.MsgStats:
		err = s.handleStats(msg)
		transport.ReleaseReceived(msg)
	case transport.MsgPullRO:
		// Reached only when the reader pool is disabled (the receive
		// stage intercepts MsgPullRO otherwise): served inline from the
		// current snapshot — lock-free, but serialized with training.
		err = s.handlePullRO(msg, s.ep)
		transport.ReleaseReceived(msg)
	case transport.MsgShutdown:
		transport.ReleaseReceived(msg)
		return true, nil
	default:
		// Heartbeats and stray acks are ignored by servers.
		transport.ReleaseReceived(msg)
	}
	return false, err
}

// ack sends a pooled acknowledgement of the given type for (to, seq).
func (s *Server) ack(typ transport.MsgType, to transport.NodeID, seq uint64) error {
	a := transport.NewMessage()
	a.Type = typ
	a.To = to
	a.Seq = seq
	return transport.SendOwned(s.ep, a)
}

func (s *Server) handlePush(msg *transport.Message) error {
	if _, dup := s.dedupLookup(msg.From, msg.Seq); dup {
		// A retransmission (or a duplicated frame) of a push already
		// consumed: re-ack so the retrying worker unblocks, but never
		// re-apply the gradient — at-least-once delivery plus this
		// window yields effectively-once application.
		s.dedupHits++
		s.metrics.dedupPushHits.Inc()
		// The re-ack parks like the original if its wave is still pending
		// replication: an ack must always mean "replicated".
		if err := s.ackOrPark(msg.From, msg.Seq); err != nil {
			return fmt.Errorf("core: server %d re-ack push: %w", s.cfg.Rank, err)
		}
		return nil
	}
	if s.staleFenced(msg) {
		return s.rejectStale(msg)
	}
	worker := int(msg.From.Rank)
	progress := int(msg.Progress)
	if s.adapt != nil {
		s.adapt.ObservePush(worker, s.now())
	}
	advancesBefore := s.debugAdvances()
	apply, released := s.ctrl.OnPush(worker, progress)
	s.assertDrainImpliesAdvance(len(released), advancesBefore)
	if apply {
		// Algorithm 1 line 15: w ← w + g/N, before draining pulls.
		if err := s.shard.ApplyGradPayload(msg.Keys, msg.Vals, 1/float64(s.cfg.NumWorkers)); err != nil {
			return fmt.Errorf("core: server %d apply push from %s: %w", s.cfg.Rank, msg.From, err)
		}
		s.metrics.pushesApplied.Inc()
	} else {
		s.metrics.pushesDropped.Inc()
	}
	// A dropped push is consumed too: its duplicate must not be offered
	// to the controller a second time.
	s.dedupRecord(msg.From, msg.Seq, dedupPushDone)
	if s.replActive() {
		// Acked ⇒ replicated: the ack is parked on the wave carrying this
		// push's effects and released by the backup's acknowledgement.
		if err := s.replicatePush(msg, apply); err != nil {
			return err
		}
	} else if err := s.ack(transport.MsgPushAck, msg.From, msg.Seq); err != nil {
		return fmt.Errorf("core: server %d ack push: %w", s.cfg.Rank, err)
	}
	for _, rel := range released {
		s.assertSSPStaleness(rel.Progress)
		if err := s.releasePull(rel.Token.(pullToken)); err != nil {
			return err
		}
	}
	return nil
}

// releasePull answers a pull drained from the DPR buffer, accounting its
// buffered time and the drain counter.
func (s *Server) releasePull(tok pullToken) error {
	s.metrics.dprDrained.Inc()
	if s.metrics.on && !tok.at.IsZero() {
		s.metrics.dprWait.Observe(time.Since(tok.at))
	}
	return s.respondPull(tok)
}

// pullToken carries what the server needs to answer a delayed pull later.
type pullToken struct {
	from transport.NodeID
	seq  uint64
	keys []keyrange.Key
	// at is the buffering timestamp feeding the time-in-DPR-buffer
	// histogram; zero when telemetry is off or the pull never buffered.
	at time.Time
}

func (s *Server) handlePull(msg *transport.Message) error {
	if out, dup := s.dedupLookup(msg.From, msg.Seq); dup {
		s.dedupHits++
		s.metrics.dedupPullHits.Inc()
		if out == dedupPullAnswered {
			// The earlier response was lost in flight; answering again
			// with current parameters is safe — pulls do not mutate.
			// (No keys copy needed: this path answers before returning.)
			return s.respondPull(pullToken{from: msg.From, seq: msg.Seq, keys: msg.Keys})
		}
		// Still buffered as a DPR: the original will be answered when a
		// push releases it; registering the duplicate would answer the
		// worker twice and corrupt the DPR accounting.
		return nil
	}
	if s.staleFenced(msg) {
		return s.rejectStale(msg)
	}
	worker := int(msg.From.Rank)
	progress := int(msg.Progress)
	s.metrics.pulls.Inc()
	keys := msg.Keys
	if msg.ReceiverOwned() {
		// The apply loop recycles this message as soon as the handler
		// returns, but a buffered DPR token outlives it — take a copy.
		// (Sender-owned messages are safe to alias: the worker holds them
		// until its pull completes, which is after any DPR release.)
		keys = append([]keyrange.Key(nil), keys...)
	}
	tok := pullToken{from: msg.From, seq: msg.Seq, keys: keys}
	if s.metrics.on {
		tok.at = time.Now()
	}
	if s.ctrl.OnPull(worker, progress, tok) {
		s.assertSSPStaleness(progress)
		s.dedupRecord(msg.From, msg.Seq, dedupPullAnswered)
		return s.respondPull(tok)
	}
	s.dedupRecord(msg.From, msg.Seq, dedupPullPending)
	s.metrics.dprBuffered.Inc()
	return nil // buffered as a DPR; answered by a later push
}

// handleSetCond swaps the shard's synchronization model at runtime (the
// paper's flexibility claim: a model is just a pair of conditions, so
// changing it is a message, not a restart). State — V_train, counts, the
// DPR buffer — is preserved; pulls the new conditions admit are answered
// immediately.
func (s *Server) handleSetCond(msg *transport.Message) error {
	spec, err := syncmodel.DecodeSpec(msg.Vals)
	if err != nil {
		return fmt.Errorf("core: server %d set-cond: %w", s.cfg.Rank, err)
	}
	model, err := spec.Build()
	if err != nil {
		return fmt.Errorf("core: server %d set-cond: %w", s.cfg.Rank, err)
	}
	prev, _ := s.ctrl.Spec()
	released := s.ctrl.SetModel(model)
	if spec.Kind != prev.Kind {
		s.switches++
		s.metrics.syncSwitches.Inc()
	}
	if spec.Kind == syncmodel.KindAdaptive {
		// Installing an adaptive model (re)starts the adaptive loop with
		// the spec's bounds; the driver's forecast history restarts too.
		s.installAdaptive(spec)
	} else {
		// An explicit admin switch to a fixed model is an override: the
		// adaptive loop must stop second-guessing it.
		s.adapt = nil
	}
	// The switch already happened; an unreachable admin must not take
	// the server down with it.
	_ = s.ack(transport.MsgSetCondAck, msg.From, msg.Seq)
	for _, rel := range released {
		s.assertSSPStaleness(rel.Progress)
		if err := s.releasePull(rel.Token.(pullToken)); err != nil {
			return err
		}
	}
	return nil
}

// SetCondition asks a server to switch its synchronization model at
// runtime and waits (cancellably) for the acknowledgement. Call it from
// an endpoint that is not concurrently used by a Worker's receive loop
// (e.g. an admin endpoint). On cancellation the receive keeps draining in
// the background until the endpoint closes or the ack arrives.
func SetCondition(ctx context.Context, ep transport.Endpoint, server int, spec syncmodel.Spec) error {
	if _, err := spec.Build(); err != nil {
		return err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	msg := &transport.Message{
		Type: transport.MsgSetCond,
		To:   transport.Server(server),
		Seq:  1,
		Vals: spec.Encode(),
	}
	if err := ep.Send(msg); err != nil {
		return err
	}
	resp, err := recvCtx(ctx, ep)
	if err != nil {
		if ctx.Err() != nil {
			return fmt.Errorf("core: set-cond on server %d: %w", server, err)
		}
		return err
	}
	typ := resp.Type
	transport.ReleaseReceived(resp)
	if typ != transport.MsgSetCondAck {
		return fmt.Errorf("core: unexpected %s in reply to set-cond", typ)
	}
	return nil
}

func (s *Server) respondPull(tok pullToken) error {
	// Released DPRs flip to "answered" so a duplicate arriving later is
	// re-answered rather than silently ignored.
	s.dedupRecord(tok.from, tok.seq, dedupPullAnswered)
	if s.adapt != nil {
		// The answer starts the worker's next compute window; the driver
		// pairs it with the following push to forecast iteration time
		// without counting blocking. Out-of-range ranks (admin) are ignored.
		s.adapt.ObservePullAnswer(int(tok.from.Rank), s.now())
	}
	keys := tok.keys
	if len(keys) == 0 {
		keys = s.keys
	}
	resp := transport.NewMessage()
	resp.Type = transport.MsgPullResp
	resp.To = tok.from
	resp.Seq = tok.seq
	resp.Keys = append(resp.Keys[:0], keys...)
	vals, err := s.shard.GatherShard(resp.Vals[:0], keys)
	if err != nil {
		transport.Release(resp)
		return fmt.Errorf("core: server %d gather for %s: %w", s.cfg.Rank, tok.from, err)
	}
	resp.Vals = vals
	if err := transport.SendOwned(s.ep, resp); err != nil {
		return fmt.Errorf("core: server %d respond pull: %w", s.cfg.Rank, err)
	}
	return nil
}
