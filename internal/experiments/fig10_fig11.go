package experiments

import (
	"fmt"

	"github.com/fluentps/fluentps/internal/metrics"
	"github.com/fluentps/fluentps/internal/sim"
	"github.com/fluentps/fluentps/internal/syncmodel"
)

func init() {
	register(&Experiment{
		ID:    "fig10",
		Title: "Fig 10: accuracy vs time across sync models (AlexNet, 64 workers)",
		Paper: "ASP fastest but ~1% worse accuracy; PSSP(0.5) highest accuracy and ~1.38× faster than SSP; BSP slowest.",
		Run: func(opts Options) (*Report, error) {
			return runSyncModelComparison(opts, 64, 0.5)
		},
	})
	register(&Experiment{
		ID:    "fig11",
		Title: "Fig 11: accuracy vs time across sync models (AlexNet, 128 workers)",
		Paper: "At 128 workers PSSP(0.3/0.5) reaches ~3.9% higher accuracy than ASP; PSSP's advantage grows with scale.",
		Run: func(opts Options) (*Report, error) {
			return runSyncModelComparison(opts, 128, 0.3)
		},
	})
}

// runSyncModelComparison reproduces Figs 10 and 11: BSP, SSP(3), ASP, and
// PSSP with c ∈ {0.1, 0.3, 0.5} on the CPU cluster.
func runSyncModelComparison(opts Options, workers int, bestC float64) (*Report, error) {
	w := alexNetC10(opts.Seed)
	nIters := iters(opts, 600, 60)
	if opts.Quick {
		workers = workers / 4
	}
	compute := cpuCompute(workers)
	if workers >= 100 {
		// The 128-node Kubernetes cluster packs containers more unevenly
		// (paper §IV-A); stronger permanent speed spread is what makes
		// ASP's update imbalance visible at this scale.
		compute.SpeedSpread = 0.5
	}
	models := []syncmodel.Model{
		syncmodel.BSP(),
		syncmodel.SSP(3),
		syncmodel.ASP(),
		syncmodel.PSSPConst(3, 0.1),
		syncmodel.PSSPConst(3, 0.3),
		syncmodel.PSSPConst(3, 0.5),
	}
	rep := &Report{}
	table := &metrics.Table{
		Title:   fmt.Sprintf("Fig %s — accuracy vs time, %d workers", map[int]string{64: "10", 128: "11"}[workers], workers),
		Headers: []string{"model", "total time", "final acc", "DPRs"},
	}
	results := map[string]*sim.Result{}
	for _, m := range models {
		cfg := sim.Config{
			Arch: sim.ArchFluentPS,
			// Table IV's footnote: the AlexNet CPU cluster runs 1 server.
			// That also keeps PSSP's probability semantics clean — with M
			// shards flipping independent coins a worker would be paused
			// with probability 1−(1−P)^M instead of P.
			Workers:      workers,
			Servers:      1,
			Model:        w.model,
			Train:        w.train,
			Test:         w.test,
			Sync:         m,
			Drain:        syncmodel.SoftBarrier,
			UseEPS:       true,
			NewOptimizer: w.momentum(),
			BatchSize:    realBatch(workers),
			Iters:        nIters,
			// The paper's x-axis counts aggregate iterations: each model
			// runs until the same total update budget is spent, so
			// relaxed models that keep fast workers busy finish sooner.
			TotalBudget: nIters * workers,
			Compute:     compute,
			Net:         cpuNet(),
			EvalEvery:   nIters / 6,
			Seed:        opts.Seed,
		}
		res, err := sim.Run(cfg)
		if err != nil {
			return nil, err
		}
		results[m.Name] = res
		table.AddRow(m.Name, metrics.F(res.TotalTime), metrics.F(res.FinalAcc), fmt.Sprint(res.DPRs))
		series := &metrics.Series{Name: m.Name}
		for _, p := range res.History {
			series.Add(p.Time, p.Acc)
		}
		rep.Series = append(rep.Series, series)
	}
	rep.Tables = append(rep.Tables, table)

	ssp := results["SSP(s=3)"]
	asp := results["ASP"]
	best := results[syncmodel.PSSPConst(3, bestC).Name]
	rep.Notef("PSSP(c=%.1f) vs SSP: %.2fx faster (paper: 1.38x at N=64)", bestC, ssp.TotalTime/best.TotalTime)
	rep.Notef("PSSP(c=%.1f) vs ASP accuracy: %+.3f (paper: +1%% at N=64, +3.9%% at N=128)", bestC, best.FinalAcc-asp.FinalAcc)
	return rep, nil
}
