package transport

import (
	"bytes"
	"sync"
	"testing"

	"github.com/fluentps/fluentps/internal/keyrange"
)

func TestViewFieldRoundtrip(t *testing.T) {
	m := &Message{Type: MsgPush, From: Worker(2), To: Server(1), Seq: 77, Progress: 5, View: 42,
		Keys: []keyrange.Key{3, 9}, Vals: []float64{1.5, -2.5, 3}}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	defer ReleaseReceived(got)
	if got.View != 42 {
		t.Fatalf("View = %d after roundtrip, want 42", got.View)
	}
	c := m.Clone()
	if c.View != 42 {
		t.Fatalf("Clone dropped View: %d", c.View)
	}
}

func TestPackBytesRoundtrip(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		[]byte("x"),
		[]byte("exactly8"),
		[]byte("a slightly longer byte string with odd length!"),
		bytes.Repeat([]byte{0x00, 0xff, 0x7f, 0x80}, 100),
	}
	var vals []float64
	for _, b := range cases {
		vals = PackBytes(vals, b)
	}
	// Survive a wire trip: packed bytes ride in Vals bit-exactly.
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Message{Type: MsgView, Vals: vals}); err != nil {
		t.Fatal(err)
	}
	m, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	defer ReleaseReceived(m)
	rest := m.Vals
	for i, want := range cases {
		var got []byte
		got, rest, err = UnpackBytes(rest)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("case %d: got %q want %q", i, got, want)
		}
	}
	if len(rest) != 0 {
		t.Fatalf("%d words left over", len(rest))
	}
	if _, _, err := UnpackBytes(nil); err == nil {
		t.Fatal("UnpackBytes(nil) should fail")
	}
	if _, _, err := UnpackBytes([]float64{100}); err == nil {
		t.Fatal("truncated packed bytes should fail")
	}
	if _, _, err := UnpackBytes([]float64{-1}); err == nil {
		t.Fatal("negative length should fail")
	}
}

// fakeHost is a minimal endpoint for demux tests: inject inbound frames
// through in, observe outbound ones on sent. A real multi-identity host is
// a TCP listener whose address book routes every virtual id here.
type fakeHost struct {
	id        NodeID
	in        chan *Message
	sent      chan *Message
	closeOnce sync.Once
}

func newFakeHost(id NodeID) *fakeHost {
	return &fakeHost{id: id, in: make(chan *Message, 16), sent: make(chan *Message, 16)}
}

func (f *fakeHost) ID() NodeID { return f.id }

func (f *fakeHost) Send(m *Message) error { f.sent <- m; return nil }

func (f *fakeHost) Recv() (*Message, error) {
	m, ok := <-f.in
	if !ok {
		return nil, ErrClosed
	}
	return m, nil
}

func (f *fakeHost) Close() error {
	f.closeOnce.Do(func() { close(f.in) })
	return nil
}

func TestDemuxRoutesByDestination(t *testing.T) {
	host := newFakeHost(Server(0))

	d := NewDemux(host)
	main := d.Main()
	if main.ID() != Server(0) {
		t.Fatalf("main id = %v", main.ID())
	}
	promoted, err := d.Open(Server(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Open(Server(7)); err == nil {
		t.Fatal("double Open should fail")
	}

	// Traffic to the host id lands on Main, traffic to the opened id on
	// its endpoint — over the SAME underlying host endpoint.
	host.in <- &Message{Type: MsgPush, To: Server(0), Seq: 1}
	host.in <- &Message{Type: MsgPush, To: Server(7), Seq: 2}
	m, err := main.Recv()
	if err != nil || m.Seq != 1 {
		t.Fatalf("main recv = %v, %v", m, err)
	}
	m, err = promoted.Recv()
	if err != nil || m.Seq != 2 {
		t.Fatalf("promoted recv = %v, %v", m, err)
	}

	// Sends from the virtual endpoint carry its identity.
	if err := promoted.Send(&Message{Type: MsgPushAck, To: Worker(0), Seq: 3}); err != nil {
		t.Fatal(err)
	}
	if m = <-host.sent; m.From != Server(7) {
		t.Fatalf("From = %v, want server/7", m.From)
	}

	// Closing a secondary endpoint detaches only that identity; its
	// traffic falls back to Main instead of being lost.
	if err := promoted.Close(); err != nil {
		t.Fatal(err)
	}
	host.in <- &Message{Type: MsgPush, To: Server(7), Seq: 4}
	m, err = main.Recv()
	if err != nil || m.Seq != 4 {
		t.Fatalf("fallback recv = %v, %v", m, err)
	}

	// Closing Main closes the host: further receives fail everywhere.
	if err := main.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := main.Recv(); err == nil {
		t.Fatal("recv after close should fail")
	}
}

func TestSetPeerAddrUnwrapsFlaky(t *testing.T) {
	net := NewChanNetwork(1)
	ep := net.Endpoint(Worker(0))
	if SetPeerAddr(ep, Server(0), "x") {
		t.Fatal("chan endpoints have no address book")
	}
	// Flaky over chan still has none, but the probe must unwrap cleanly.
	if SetPeerAddr(NewFlaky(ep, FlakyConfig{}), Server(0), "x") {
		t.Fatal("flaky-over-chan should report false")
	}
}
