package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/fluentps/fluentps/internal/clusterview"
	"github.com/fluentps/fluentps/internal/keyrange"
	"github.com/fluentps/fluentps/internal/kvstore"
	"github.com/fluentps/fluentps/internal/telemetry"
	"github.com/fluentps/fluentps/internal/transport"
)

// RetryPolicy configures per-request retransmission. A request whose
// response has not arrived after a backoff interval is re-sent with the
// same sequence number; the server's duplicate window guarantees a
// retransmitted push is applied at most once, so retries upgrade the
// at-least-once transport to effectively-once application.
//
// The zero policy disables retries (a request is sent exactly once and
// only the worker timeout bounds it, the historical behaviour).
type RetryPolicy struct {
	// MaxAttempts bounds the total number of sends per request (first
	// send included). Zero or negative means unlimited retransmissions,
	// bounded only by the worker timeout.
	MaxAttempts int
	// BaseDelay is the first retransmission interval; zero disables
	// retries entirely.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff. Zero means no cap.
	MaxDelay time.Duration
}

func (p RetryPolicy) enabled() bool { return p.BaseDelay > 0 }

// delay returns the backoff before retransmission number attempt+1
// (attempt counts from 0): BaseDelay doubled per attempt, capped.
func (p RetryPolicy) delay(attempt int) time.Duration {
	d := p.BaseDelay
	for i := 0; i < attempt; i++ {
		d *= 2
		if p.MaxDelay > 0 && d >= p.MaxDelay {
			return p.MaxDelay
		}
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		return p.MaxDelay
	}
	return d
}

// DefaultPipelineDepth is each per-server outbound queue's capacity when
// WorkerConfig.PipelineDepth is zero.
const DefaultPipelineDepth = 32

// WorkerConfig configures a Worker; it mirrors ServerConfig's options
// shape. Rank, Layout, and Assignment are required.
type WorkerConfig struct {
	// Rank is the worker's index; the endpoint id must be
	// transport.Worker(Rank).
	Rank int
	// Layout is the model's communication layout (shared by all nodes).
	Layout *keyrange.Layout
	// Assignment maps keys to server shards.
	Assignment *keyrange.Assignment
	// Timeout bounds each outstanding request; zero waits forever. A
	// delayed pull legitimately waits for stragglers, so when set it
	// should comfortably exceed the slowest worker's round time.
	Timeout time.Duration
	// Retry enables retransmission of unanswered requests; see
	// RetryPolicy. Safe because servers deduplicate per (worker, seq).
	Retry RetryPolicy
	// PipelineDepth is the capacity of each per-server outbound queue —
	// how many requests to one shard may be queued behind a slow send
	// before SPush/SPull blocks. Zero selects DefaultPipelineDepth.
	PipelineDepth int
	// PayloadCapacity pre-sizes each pooled request's value buffer (in
	// float64s), avoiding regrowth during the first operations. Zero
	// derives it from the layout's largest per-server slice.
	PayloadCapacity int
	// Telemetry, when non-nil, receives the worker's runtime metrics —
	// lifecycle counters, push/pull RTT histograms, queue-depth gauges
	// (see core/telemetry.go). One registry per node; nil disables
	// collection at zero hot-path cost beyond a predictable branch.
	Telemetry *telemetry.Registry
	// View is the epoch-versioned cluster membership the worker starts
	// from. When set it overrides Assignment, every request is stamped
	// with the view's epoch, and the worker adopts newer views pushed to
	// it (or embedded in a stale-view rejection) — re-routing reissued
	// requests to the keys' new owners. Nil keeps the static legacy mode:
	// unstamped requests, assignment changes only via SetAssignment.
	View *clusterview.View
}

// WorkerStats counts the worker's request-lifecycle events.
type WorkerStats struct {
	// Retries is the number of retransmitted requests.
	Retries uint64
	// Timeouts is the number of requests abandoned on timeout.
	Timeouts uint64
	// Stale is the number of responses that arrived after their request
	// was abandoned (late answers to timed-out or retried operations).
	Stale uint64
}

// Worker is a FluentPS client: it pushes updates for and pulls values of
// the full model, splitting requests per server shard and reporting its
// progress with every operation (the paper's sPush/sPull).
//
// A Worker is owned by one training goroutine; SPush/SPull must not be
// called concurrently. Internally, each server shard has a persistent
// sender goroutine behind a bounded queue, so one operation's per-server
// messages go out concurrently (scatter), and a receive loop routes
// responses to the outstanding requests (gather) — slow shards only delay
// the operations that need them.
type Worker struct {
	cfg     WorkerConfig
	ep      transport.Endpoint
	servers int

	seq atomic.Uint64

	mu      sync.Mutex
	waiting map[uint64]*pendingReq
	recvErr error
	done    chan struct{}

	pipes    []*serverPipe
	pipeStop chan struct{}
	pipeWG   sync.WaitGroup

	reqPool sync.Pool // *pendingReq

	retries  atomic.Uint64
	timeouts atomic.Uint64
	stale    atomic.Uint64

	// metrics holds the worker's telemetry instruments (no-ops when
	// cfg.Telemetry is nil); see core/telemetry.go.
	metrics workerMetrics

	// keysPerServer caches each server's key list.
	keysPerServer [][]keyrange.Key

	// views tracks the adopted cluster view (nil in legacy static mode).
	// The receive loop advances it; request paths read it, so access goes
	// through the tracker's lock. viewDirty flags a newly adopted view
	// whose assignment the owning goroutine has not switched to yet;
	// adoptedEpoch (owner-goroutine only) remembers the last switch.
	views        *clusterview.Tracker
	viewDirty    atomic.Bool
	adoptedEpoch uint64
}

// serverPipe is one shard's outbound pipeline: a bounded queue drained by
// a persistent sender goroutine, so a slow or blocking send to one server
// does not serialize the scatter to the others.
type serverPipe struct {
	queue chan *pendingReq
}

// response is what await receives: the server's reply or the reason there
// will never be one.
type response struct {
	msg *transport.Message
	err error
}

// pendingReq is one in-flight request: the response channel the receive
// loop delivers to, plus the original message kept for retransmission.
type pendingReq struct {
	seq uint64
	msg *transport.Message
	ch  chan response // capacity 1; at most one delivery per registration
	// start is the request's creation time, feeding the RTT histograms;
	// zero when telemetry is off.
	start time.Time
	// sent is set by the pipe after the original send completes; until
	// then the pipe may still read msg, so it must not be recycled.
	sent atomic.Bool
	// discarded marks a fire-and-forget request (guarded by Worker.mu):
	// the receive loop absorbs its ack and recycles it without a Wait.
	discarded bool
}

// NewWorker builds a worker over the given endpoint, whose id must be
// transport.Worker(cfg.Rank).
func NewWorker(ep transport.Endpoint, cfg WorkerConfig) (*Worker, error) {
	if cfg.View != nil {
		if err := cfg.View.Validate(cfg.Layout); err != nil {
			return nil, fmt.Errorf("core: worker %d: %w", cfg.Rank, err)
		}
		cfg.Assignment = cfg.View.Assignment
	}
	if cfg.Layout == nil || cfg.Assignment == nil {
		return nil, fmt.Errorf("core: worker %d: WorkerConfig needs Layout and Assignment", cfg.Rank)
	}
	if got, want := ep.ID(), transport.Worker(cfg.Rank); got != want {
		return nil, fmt.Errorf("core: endpoint id %s does not match worker rank %d", got, cfg.Rank)
	}
	if cfg.PipelineDepth <= 0 {
		cfg.PipelineDepth = DefaultPipelineDepth
	}
	w := &Worker{
		cfg:     cfg,
		ep:      ep,
		servers: cfg.Assignment.NumServers(),
		waiting: make(map[uint64]*pendingReq),
		done:    make(chan struct{}),
	}
	w.keysPerServer = make([][]keyrange.Key, w.servers)
	for m := 0; m < w.servers; m++ {
		w.keysPerServer[m] = cfg.Assignment.KeysOf(m)
	}
	if cfg.View != nil {
		w.views = clusterview.NewTracker(cfg.View)
		w.adoptedEpoch = cfg.View.Epoch
	}
	w.metrics = newWorkerMetrics(cfg.Telemetry)
	w.startPipes()
	if cfg.Telemetry != nil {
		// Registered after startPipes so the closures only ever see the
		// final pipe slice.
		cfg.Telemetry.GaugeFunc("worker.outstanding", func() int64 {
			return int64(w.Outstanding())
		})
		cfg.Telemetry.GaugeFunc("worker.pipeline_depth", func() int64 {
			var n int64
			for _, p := range w.pipes {
				n += int64(len(p.queue))
			}
			return n
		})
	}
	go w.recvLoop()
	return w, nil
}

// Rank returns the worker's index.
func (w *Worker) Rank() int { return w.cfg.Rank }

// Stats returns a snapshot of the worker's lifecycle counters.
func (w *Worker) Stats() WorkerStats {
	return WorkerStats{
		Retries:  w.retries.Load(),
		Timeouts: w.timeouts.Load(),
		Stale:    w.stale.Load(),
	}
}

// startPipes launches one sender goroutine per server shard. Called from
// the owning goroutine with no operations in flight.
func (w *Worker) startPipes() {
	w.pipeStop = make(chan struct{})
	w.pipes = make([]*serverPipe, w.servers)
	for m := 0; m < w.servers; m++ {
		pipe := &serverPipe{queue: make(chan *pendingReq, w.cfg.PipelineDepth)}
		w.pipes[m] = pipe
		w.pipeWG.Add(1)
		go w.runPipe(pipe, w.pipeStop)
	}
}

// stopPipes winds the sender goroutines down; requests still queued are
// never sent and fail through their timeout (or the recv loop's death).
func (w *Worker) stopPipes() {
	close(w.pipeStop)
	w.pipeWG.Wait()
}

func (w *Worker) runPipe(pipe *serverPipe, stop <-chan struct{}) {
	defer w.pipeWG.Done()
	for {
		select {
		case p := <-pipe.queue:
			if err := transport.SendRetained(w.ep, p.msg); err != nil {
				w.failPending(p, fmt.Errorf("core: worker %d send to %s: %w", w.cfg.Rank, p.msg.To, err))
				continue
			}
			// After this store the pipe never touches p again; completion
			// may recycle it.
			p.sent.Store(true)
		case <-stop:
			return
		}
	}
}

// enqueue hands p to its shard's pipe, blocking (cancellably) when the
// pipeline is full.
func (w *Worker) enqueue(ctx context.Context, m int, p *pendingReq) error {
	select {
	case w.pipes[m].queue <- p:
		return nil
	default:
	}
	select {
	case w.pipes[m].queue <- p:
		return nil
	case <-ctx.Done():
		w.forget(p)
		return fmt.Errorf("core: worker %d enqueue to server %d: %w", w.cfg.Rank, m, ctx.Err())
	case <-w.pipeStop:
		w.forget(p)
		return ErrClosed
	}
}

func (w *Worker) recvLoop() {
	for {
		msg, err := w.ep.Recv()
		if err != nil {
			lost := w.lostErr(err)
			w.mu.Lock()
			w.recvErr = err
			var finish []*pendingReq
			for seq, p := range w.waiting {
				delete(w.waiting, seq)
				if p.discarded {
					finish = append(finish, p)
				} else {
					//lint:ignore lockorder capacity-1 channel, sole send per registration: never blocks
					p.ch <- response{err: lost}
				}
			}
			w.mu.Unlock()
			for _, p := range finish {
				w.finishRequest(p)
			}
			close(w.done)
			return
		}
		switch msg.Type {
		case transport.MsgView:
			// The admin distributes a new cluster view. Adopt it, ack it,
			// and keep receiving — no request is waiting on this.
			w.adoptFromWire(msg.Vals)
			ack := &transport.Message{Type: transport.MsgViewAck, To: msg.From, Seq: msg.Seq}
			_ = w.ep.Send(ack)
			transport.ReleaseReceived(msg)
			continue
		case transport.MsgStaleView:
			// A server fenced one of our requests and embedded the view it
			// is on. Adopt it here (the waiter may be blocked in await and
			// could not), then deliver the rejection so Wait can reissue.
			w.adoptFromWire(msg.Vals)
		}
		if !w.deliver(msg) {
			// A late answer to an abandoned (timed-out) request, or the
			// second copy of a duplicated response: drop it — nobody is
			// waiting for it anymore.
			w.stale.Add(1)
			w.metrics.stale.Inc()
			transport.ReleaseReceived(msg)
		}
	}
}

// deliver routes a response to its pending request. Removal from the
// table and the channel send happen under one critical section, so each
// registration sees at most one delivery (the capacity-1 channel never
// blocks). Discarded (fire-and-forget) requests are completed in place.
func (w *Worker) deliver(msg *transport.Message) bool {
	w.mu.Lock()
	p, ok := w.waiting[msg.Seq]
	if !ok {
		w.mu.Unlock()
		return false
	}
	delete(w.waiting, msg.Seq)
	// Observe the round trip before handing p over: once the response is
	// sent the waiter may recycle p at any moment.
	if !p.start.IsZero() {
		switch p.msg.Type {
		case transport.MsgPush:
			w.metrics.pushRTT.Observe(time.Since(p.start))
		case transport.MsgPull:
			w.metrics.pullRTT.Observe(time.Since(p.start))
		}
	}
	discarded := p.discarded
	if !discarded {
		//lint:ignore lockorder capacity-1 channel, sole send per registration: never blocks
		p.ch <- response{msg: msg}
	}
	w.mu.Unlock()
	if discarded {
		transport.ReleaseReceived(msg)
		w.finishRequest(p)
	}
	return true
}

// failPending resolves p with err (used by pipe senders when the
// transport rejects the request outright).
func (w *Worker) failPending(p *pendingReq, err error) {
	w.mu.Lock()
	cur, ok := w.waiting[p.seq]
	if !ok || cur != p {
		w.mu.Unlock()
		return
	}
	delete(w.waiting, p.seq)
	discarded := p.discarded
	if !discarded {
		//lint:ignore lockorder capacity-1 channel, sole send per registration: never blocks
		p.ch <- response{err: err}
	}
	w.mu.Unlock()
	if discarded {
		w.finishRequest(p)
	}
}

// newRequest builds a pooled request message and its pending entry. keys
// are copied and vals gathered into the message's own (reused) storage —
// a pooled message must never alias shared slices.
func (w *Worker) newRequest(typ transport.MsgType, m int, progress int, delta []float64) *pendingReq {
	seq := w.seq.Add(1)
	msg := transport.NewMessage()
	msg.Type = typ
	msg.To = transport.Server(m)
	msg.Seq = seq
	msg.Progress = int32(progress)
	msg.View = w.viewStamp()
	msg.Keys = append(msg.Keys[:0], w.keysPerServer[m]...)
	if delta != nil {
		if n := w.cfg.PayloadCapacity; n > 0 && cap(msg.Vals) < n {
			msg.Vals = make([]float64, 0, n)
		}
		msg.Vals = kvstore.GatherInto(msg.Vals[:0], w.cfg.Layout, delta, msg.Keys)
	}
	p, _ := w.reqPool.Get().(*pendingReq)
	if p == nil {
		p = &pendingReq{ch: make(chan response, 1)}
	}
	p.seq = seq
	p.msg = msg
	p.sent.Store(false)
	p.discarded = false
	p.start = time.Time{}
	if w.metrics.on {
		p.start = time.Now()
	}
	return p
}

// expect registers interest in a response to p's message. It fails fast
// when the receive loop has already died: registering after that point
// would leave a request nothing will ever resolve (the historical hang on
// operations started after connection loss).
func (w *Worker) expect(p *pendingReq) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.recvErr != nil {
		return w.lostErr(w.recvErr)
	}
	w.waiting[p.seq] = p
	return nil
}

// forget abandons an in-flight request so a late response cannot
// accumulate in the waiting table (the historical timeout leak). Any
// response that raced in is drained and counted stale. The request's
// resources are not recycled — the pipe or the peer may still hold them;
// the garbage collector takes over on this rare fault path.
func (w *Worker) forget(p *pendingReq) {
	w.mu.Lock()
	if cur, ok := w.waiting[p.seq]; ok && cur == p {
		delete(w.waiting, p.seq)
	}
	w.mu.Unlock()
	select {
	case r := <-p.ch:
		if r.msg != nil {
			w.stale.Add(1)
			w.metrics.stale.Inc()
			transport.ReleaseReceived(r.msg)
		}
	default:
	}
}

// finishRequest recycles a completed request. Safe only after its single
// delivery was consumed (the table entry is gone, so no further send can
// happen). The request message never escapes the worker — SendRetained
// copies on every transport — so it is recycled as soon as the pipe is
// provably done reading it.
func (w *Worker) finishRequest(p *pendingReq) {
	if !p.sent.Load() {
		// The pipe still holds p (a retransmit was answered before the
		// original send). Leave both to the garbage collector.
		return
	}
	transport.Release(p.msg)
	p.msg = nil
	w.reqPool.Put(p)
}

// viewStamp returns the epoch every outgoing request carries — zero (the
// unfenced sentinel) in legacy static mode.
func (w *Worker) viewStamp() uint32 {
	if w.views == nil {
		return 0
	}
	return w.views.View().EpochStamp()
}

// adoptFromWire decodes and (epoch permitting) installs a view carried in
// a MsgView broadcast or embedded in a MsgStaleView rejection. Runs on the
// receive loop; the assignment switch is deferred to the owning goroutine
// (maybeAdoptAssignment) because it rebuilds the sender pipelines.
func (w *Worker) adoptFromWire(vals []float64) {
	if w.views == nil || len(vals) == 0 {
		return
	}
	v, _, err := clusterview.Decode(vals)
	if err != nil || !w.views.Advance(v) {
		return
	}
	w.metrics.viewAdoptions.Inc()
	// Redial: rebind every server identity to the address now serving it
	// (a promotion moves a dead rank's address onto its backup's process).
	for m := range v.Servers {
		if v.Servers[m].Addr != "" {
			transport.SetPeerAddr(w.ep, v.Servers[m].ID, v.Servers[m].Addr)
		}
	}
	w.viewDirty.Store(true)
}

// maybeAdoptAssignment switches the owning goroutine onto a newly adopted
// view's key assignment. Only safe at a quiet point — SetAssignment tears
// down and rebuilds the per-server pipelines — so with requests still in
// flight the switch waits for the next operation boundary; until then
// fenced requests are repaired one by one through the reissue path.
func (w *Worker) maybeAdoptAssignment() {
	if w.views == nil || !w.viewDirty.Load() || w.Outstanding() != 0 {
		return
	}
	// Clear the flag before reading the view: an adoption racing in after
	// the clear re-raises it, so the newest view is never stranded.
	w.viewDirty.Store(false)
	v := w.views.View()
	if v.Epoch == w.adoptedEpoch {
		return
	}
	w.adoptedEpoch = v.Epoch
	w.SetAssignment(v.Assignment)
}

func (w *Worker) lostErr(err error) error {
	if err == transport.ErrClosed {
		return transport.ErrClosed
	}
	return fmt.Errorf("core: worker %d connection lost: %w", w.cfg.Rank, err)
}

// await blocks until p's response arrives, ctx is cancelled, the
// connection dies, the retry budget is exhausted, or the worker timeout
// elapses. Unanswered requests are retransmitted per the retry policy;
// abandoned requests are removed from the waiting table.
func (w *Worker) await(ctx context.Context, p *pendingReq) (*transport.Message, error) {
	var totalC <-chan time.Time
	if w.cfg.Timeout > 0 {
		total := time.NewTimer(w.cfg.Timeout)
		defer total.Stop()
		totalC = total.C
	}
	for attempt := 0; ; attempt++ {
		var retryC <-chan time.Time
		var retryT *time.Timer
		if w.cfg.Retry.enabled() {
			retryT = time.NewTimer(w.cfg.Retry.delay(attempt))
			retryC = retryT.C
		}
		select {
		case r := <-p.ch:
			if retryT != nil {
				retryT.Stop()
			}
			if r.err != nil {
				return nil, r.err
			}
			return r.msg, nil
		case <-ctx.Done():
			if retryT != nil {
				retryT.Stop()
			}
			w.forget(p)
			return nil, fmt.Errorf("core: worker %d: %w", w.cfg.Rank, ctx.Err())
		case <-retryC:
			if w.cfg.Retry.MaxAttempts > 0 && attempt+1 >= w.cfg.Retry.MaxAttempts {
				w.forget(p)
				w.timeouts.Add(1)
				w.metrics.timeouts.Inc()
				return nil, fmt.Errorf("core: worker %d: %w (%w) after %d attempts",
					w.cfg.Rank, ErrRetriesExhausted, ErrTimeout, attempt+1)
			}
			// Retransmit under the same seq; the server dedups. Sent
			// directly (not through the pipe): the fault path must not
			// queue behind healthy traffic. A send failure here is not
			// fatal — the endpoint may be mid-way through reconnecting —
			// the next interval retries again.
			w.retries.Add(1)
			w.metrics.retries.Inc()
			_ = transport.SendRetained(w.ep, p.msg)
		case <-totalC:
			if retryT != nil {
				retryT.Stop()
			}
			w.forget(p)
			w.timeouts.Add(1)
			w.metrics.timeouts.Inc()
			return nil, fmt.Errorf("core: worker %d: %w after %v", w.cfg.Rank, ErrTimeout, w.cfg.Timeout)
		}
	}
}

// Handle tracks an outstanding asynchronous operation; resolve it with
// Wait — the paper's kv.wait(kv.sPull(...)) pattern — or release it with
// Discard for fire-and-forget pushes.
type Handle struct {
	worker *Worker
	reqs   []*pendingReq
	// reqsBuf backs reqs for typical shard counts, so a handle is a
	// single allocation.
	reqsBuf [4]*pendingReq
	// params, when non-nil, receives scattered pull responses.
	params []float64
}

// Wait blocks until every per-server response of the operation arrived
// (Algorithm 1's kv.wait). For pulls it also scatters the responses into
// the destination vector — the gather-with-reassembly step: each shard's
// segment lands at its layout offsets as it arrives, so a straggler shard
// only delays its own segment. On the first error the operation's
// remaining requests are abandoned. A handle is spent after Wait returns;
// waiting again is a no-op.
func (h *Handle) Wait(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	reqs := h.reqs
	h.reqs = nil
	for i, p := range reqs {
		resp, err := h.worker.await(ctx, p)
		if err != nil {
			for _, q := range reqs[i+1:] {
				h.worker.forget(q)
			}
			return err
		}
		if resp.Type == transport.MsgStaleView {
			// The server fenced this request: a newer view (adopted by the
			// receive loop before delivery) moved its keys. Reissue them,
			// split across the owners the current view names.
			typ, progress := p.msg.Type, p.msg.Progress
			keys := append([]keyrange.Key(nil), p.msg.Keys...)
			vals := append([]float64(nil), p.msg.Vals...)
			transport.ReleaseReceived(resp)
			h.worker.finishRequest(p)
			if err := h.worker.reissueKeys(ctx, typ, progress, keys, vals, h.params, 0); err != nil {
				for _, q := range reqs[i+1:] {
					h.worker.forget(q)
				}
				return err
			}
			continue
		}
		if h.params != nil {
			if err := kvstore.Scatter(h.worker.cfg.Layout, h.params, resp.Keys, resp.Vals); err != nil {
				transport.ReleaseReceived(resp)
				for _, q := range reqs[i+1:] {
					h.worker.forget(q)
				}
				return fmt.Errorf("core: worker %d scatter response: %w", h.worker.cfg.Rank, err)
			}
		}
		transport.ReleaseReceived(resp)
		h.worker.finishRequest(p)
	}
	return nil
}

// Discard marks the operation fire-and-forget: each per-server response
// is absorbed and its resources recycled by the receive loop as it
// arrives, without anyone waiting. Algorithm 1's worker never waits for
// push acknowledgements — Discard is how a training loop says so without
// leaking the in-flight state. The handle is spent afterwards.
func (h *Handle) Discard() {
	w := h.worker
	reqs := h.reqs
	h.reqs = nil
	for _, p := range reqs {
		w.mu.Lock()
		if cur, ok := w.waiting[p.seq]; ok && cur == p {
			p.discarded = true
			w.mu.Unlock()
			continue
		}
		w.mu.Unlock()
		// Already resolved (response raced in, or the request failed):
		// drain and recycle here.
		select {
		case r := <-p.ch:
			transport.ReleaseReceived(r.msg)
		default:
		}
		w.finishRequest(p)
	}
}

// maxReissueDepth bounds chained stale-view rejections within one
// operation: a worker racing a burst of back-to-back view changes
// re-splits its keys at most this many times before surfacing an error.
const maxReissueDepth = 4

// reissueKeys re-sends part of an operation after a stale-view rejection:
// the given keys, regrouped by the owner the *current* view assigns them.
// For pushes, vals holds the original gathered segments in keys order
// (layout KeySize offsets), so the same update lands on the new owners;
// pulls pass an empty payload and scatter responses into params. Each
// reissued request gets a fresh sequence number — safe because the fenced
// original was never applied (the server rejects before dedup-recording a
// fenced request's effect) — and is sent directly, bypassing the pipes: a
// reissue is already on the slow path and must not queue behind healthy
// traffic or race a pipeline rebuild when the assignment switches.
func (w *Worker) reissueKeys(ctx context.Context, typ transport.MsgType, progress int32, keys []keyrange.Key, vals []float64, params []float64, depth int) error {
	if w.views == nil {
		return fmt.Errorf("core: worker %d: stale-view rejection without a view tracker", w.cfg.Rank)
	}
	if depth >= maxReissueDepth {
		return fmt.Errorf("core: worker %d: view changed %d+ times during one operation", w.cfg.Rank, depth)
	}
	w.metrics.reissues.Inc()
	v := w.views.View()
	type group struct {
		keys []keyrange.Key
		vals []float64
	}
	groups := make(map[int]*group)
	off := 0
	for _, k := range keys {
		size := w.cfg.Layout.KeySize(k)
		m := v.Assignment.ServerOf(k)
		g := groups[m]
		if g == nil {
			g = &group{}
			groups[m] = g
		}
		g.keys = append(g.keys, k)
		if len(vals) > 0 {
			g.vals = append(g.vals, vals[off:off+size]...)
		}
		off += size
	}
	for m, g := range groups {
		msg := transport.NewMessage()
		msg.Type = typ
		msg.To = transport.Server(m)
		msg.Seq = w.seq.Add(1)
		msg.Progress = progress
		msg.View = v.EpochStamp()
		msg.Keys = append(msg.Keys[:0], g.keys...)
		msg.Vals = append(msg.Vals[:0], g.vals...)
		p, _ := w.reqPool.Get().(*pendingReq)
		if p == nil {
			p = &pendingReq{ch: make(chan response, 1)}
		}
		p.seq = msg.Seq
		p.msg = msg
		p.sent.Store(false)
		p.discarded = false
		p.start = time.Time{}
		if err := w.expect(p); err != nil {
			transport.Release(msg)
			return fmt.Errorf("core: worker %d reissue to server %d: %w", w.cfg.Rank, m, err)
		}
		if err := transport.SendRetained(w.ep, msg); err != nil {
			w.forget(p)
			transport.Release(msg)
			return fmt.Errorf("core: worker %d reissue to server %d: %w", w.cfg.Rank, m, err)
		}
		p.sent.Store(true)
		resp, err := w.await(ctx, p)
		if err != nil {
			return err
		}
		if resp.Type == transport.MsgStaleView {
			// Fenced again — the view moved while we were reissuing. Only
			// this group's keys re-split; g's slices are fresh copies, so
			// they are safe to pass down directly.
			transport.ReleaseReceived(resp)
			w.finishRequest(p)
			if err := w.reissueKeys(ctx, typ, progress, g.keys, g.vals, params, depth+1); err != nil {
				return err
			}
			continue
		}
		if params != nil {
			if err := kvstore.Scatter(w.cfg.Layout, params, resp.Keys, resp.Vals); err != nil {
				transport.ReleaseReceived(resp)
				w.finishRequest(p)
				return fmt.Errorf("core: worker %d scatter reissued response: %w", w.cfg.Rank, err)
			}
		}
		transport.ReleaseReceived(resp)
		w.finishRequest(p)
	}
	return nil
}

// abandon unregisters every request of a partially-sent operation, so a
// failed SPushAsync/SPullAsync does not leave orphan waiting entries.
func (h *Handle) abandon() {
	for _, p := range h.reqs {
		h.worker.forget(p)
	}
	h.reqs = nil
}

// SPushAsync sends the update delta (full model dimensionality) for
// iteration progress — one message per server carrying that server's key
// segments, scattered concurrently through the per-server pipelines — and
// returns as soon as every message is queued. Resolve the handle with
// Wait when you need the delivery guarantee (e.g. before shutting down),
// or Discard it for Algorithm 1's fire-and-forget push (line 4).
func (w *Worker) SPushAsync(ctx context.Context, progress int, delta []float64) (*Handle, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	w.maybeAdoptAssignment()
	w.metrics.pushes.Inc()
	h := &Handle{worker: w}
	h.reqs = h.reqsBuf[:0]
	for m := 0; m < w.servers; m++ {
		if len(w.keysPerServer[m]) == 0 {
			continue
		}
		p := w.newRequest(transport.MsgPush, m, progress, delta)
		if err := w.expect(p); err != nil {
			transport.Release(p.msg)
			h.abandon()
			return nil, fmt.Errorf("core: worker %d push to server %d: %w", w.cfg.Rank, m, err)
		}
		h.reqs = append(h.reqs, p)
		if err := w.enqueue(ctx, m, p); err != nil {
			h.abandon()
			return nil, fmt.Errorf("core: worker %d push to server %d: %w", w.cfg.Rank, m, err)
		}
	}
	return h, nil
}

// SPush is the synchronous form: push and wait for all acknowledgements,
// so a returned nil error means every shard has received (and, per its
// model, applied or dropped) the update.
func (w *Worker) SPush(ctx context.Context, progress int, delta []float64) error {
	h, err := w.SPushAsync(ctx, progress, delta)
	if err != nil {
		return err
	}
	return h.Wait(ctx)
}

// SPullAsync requests the parameters needed for iteration progress+1;
// resolve with Wait, which scatters each shard's response into params.
// Each shard answers independently once its pull condition admits the
// request (possibly via the lazy pull buffer) — the overlap
// synchronization of §III-D: an up-to-date shard answers immediately even
// while another shard still waits for a straggler.
func (w *Worker) SPullAsync(ctx context.Context, progress int, params []float64) (*Handle, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	w.maybeAdoptAssignment()
	w.metrics.pulls.Inc()
	h := &Handle{worker: w, params: params}
	h.reqs = h.reqsBuf[:0]
	for m := 0; m < w.servers; m++ {
		if len(w.keysPerServer[m]) == 0 {
			continue
		}
		p := w.newRequest(transport.MsgPull, m, progress, nil)
		if err := w.expect(p); err != nil {
			transport.Release(p.msg)
			h.abandon()
			return nil, fmt.Errorf("core: worker %d pull from server %d: %w", w.cfg.Rank, m, err)
		}
		h.reqs = append(h.reqs, p)
		if err := w.enqueue(ctx, m, p); err != nil {
			h.abandon()
			return nil, fmt.Errorf("core: worker %d pull from server %d: %w", w.cfg.Rank, m, err)
		}
	}
	return h, nil
}

// SPull is the synchronous form of SPullAsync.
func (w *Worker) SPull(ctx context.Context, progress int, params []float64) error {
	h, err := w.SPullAsync(ctx, progress, params)
	if err != nil {
		return err
	}
	return h.Wait(ctx)
}

// Outstanding returns the number of requests currently in flight —
// bounded by construction: every request is removed on response, on
// timeout, and on connection loss.
func (w *Worker) Outstanding() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.waiting)
}

// Close tears down the worker: the endpoint closes (failing outstanding
// operations through the receive loop) and the per-server sender
// goroutines wind down.
func (w *Worker) Close() error {
	err := w.ep.Close()
	select {
	case <-w.pipeStop:
		// Already stopped.
	default:
		w.stopPipes()
	}
	return err
}
