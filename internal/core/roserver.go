package core

import (
	"context"
	"errors"
	"time"

	"github.com/fluentps/fluentps/internal/keyrange"
	"github.com/fluentps/fluentps/internal/transport"
)

// The read-optimized serving tier: MsgPullRO requests answered entirely
// from the shard's published epoch snapshots (kvstore/snapshot.go),
// never touching a stripe lock, the controller, or the dedup windows.
//
// Three paths serve RO pulls, sharing handlePullRO:
//
//   - The receive goroutine intercepts MsgPullRO arriving on the
//     server's own endpoint and submits it to the reader pool. A full
//     pool queue is admission control: the request is answered with
//     MsgPullRORetry immediately instead of queueing behind the apply
//     path (a pull storm backpressures, it cannot OOM the server).
//   - HandleRO serves one mux stream (or any Send/Recv conn): each
//     stream's goroutine submits to the same pool, so the per-server
//     concurrency bound holds across every attached session.
//   - With the pool disabled (ReaderPool < 0) the apply loop serves
//     MsgPullRO inline — still lock-free, but serialized with training.
//
// Full-shard responses are zero-copy: they alias the snapshot's cached
// flat payload and key slice into a non-pooled message (immutable by
// the snapshot contract, so aliasing is safe even on pointer-passing
// transports). Subset responses copy, since they are assembled per
// request.

// DefaultReaderPool is the reader-pool size used when
// ServerConfig.ReaderPool is zero.
const DefaultReaderPool = 2

// DefaultRetryAfterMs is the retry-after hint (milliseconds) carried by
// MsgPullRORetry under admission control or an unsatisfiable epoch bound.
const DefaultRetryAfterMs = 2

// readerPool resolves ServerConfig.ReaderPool: zero means
// DefaultReaderPool, negative disables the pool.
func (cfg *ServerConfig) readerPool() int {
	if cfg.ReaderPool == 0 {
		return DefaultReaderPool
	}
	return cfg.ReaderPool
}

// roQueueDepth sizes the pool's admission queue from its worker count:
// enough to keep the pool busy, small enough that saturation sheds load
// within one queue's worth of requests.
func roQueueDepth(pool int) int { return 8 * pool }

// roSender is where an RO response goes: the server's endpoint for
// requests that arrived there, or the mux stream that carried the
// request. transport.Endpoint and *transport.MuxStream both satisfy it.
type roSender interface {
	Send(m *transport.Message) error
}

// roReq is one read-only pull waiting for a pool worker.
type roReq struct {
	msg   *transport.Message
	reply roSender
}

// submitRO hands a received MsgPullRO to the reader pool, or sheds it
// with a retry-after when the pool queue is full. Called off the apply
// goroutine (receive stage, HandleRO streams); takes ownership of msg.
func (s *Server) submitRO(msg *transport.Message, reply roSender) {
	select {
	case s.roQueue <- roReq{msg: msg, reply: reply}:
	default:
		s.metrics.roRejects.Inc()
		_ = s.sendRORetry(reply, msg)
		transport.ReleaseReceived(msg)
	}
}

// roWorker is one reader-pool goroutine: it drains the RO queue until
// Run closes roStop.
func (s *Server) roWorker() {
	defer s.roWG.Done()
	for {
		select {
		case req := <-s.roQueue:
			_ = s.handlePullRO(req.msg, req.reply)
			transport.ReleaseReceived(req.msg)
		case <-s.roStop:
			return
		}
	}
}

// handlePullRO answers one read-only pull from the current snapshot.
// Safe from any goroutine: it touches only the atomic snapshot pointer,
// immutable snapshot data, and nil-safe metrics.
func (s *Server) handlePullRO(msg *transport.Message, reply roSender) error {
	snap := s.shard.ROSnapshot()
	// For RO messages View is a snapshot-epoch stamp, not a cluster-view
	// epoch: the client's minimum acceptable epoch (its monotone-reads
	// bound). A bound ahead of the published epoch cannot be served yet.
	if bound := msg.View; bound != 0 && uint32(snap.Epoch) < bound {
		return s.sendRORetry(reply, msg)
	}
	resp := &transport.Message{
		Type:     transport.MsgPullROResp,
		To:       msg.From,
		Seq:      msg.Seq,
		View:     uint32(snap.Epoch),
		Progress: int32(snap.VTrain),
	}
	if len(msg.Keys) == 0 {
		// Whole-shard pull: alias the snapshot's cached flat payload and
		// frozen key slice — zero copies, zero locks, O(1) after the
		// first reader of this epoch materializes the cache.
		resp.Keys = snap.Keys()
		resp.Vals = snap.Flat()
	} else {
		vals, err := snap.Gather(make([]float64, 0, len(msg.Vals)), msg.Keys)
		if err != nil {
			// The client's key set outran a view change; tell it to back
			// off and re-resolve rather than failing the server.
			return s.sendRORetry(reply, msg)
		}
		resp.Keys = append([]keyrange.Key(nil), msg.Keys...)
		resp.Vals = vals
	}
	s.roServed.Add(1)
	s.metrics.roPulls.Inc()
	return reply.Send(resp)
}

// sendRORetry answers msg with MsgPullRORetry; Progress carries the
// retry-after hint in milliseconds.
func (s *Server) sendRORetry(reply roSender, msg *transport.Message) error {
	return reply.Send(&transport.Message{
		Type:     transport.MsgPullRORetry,
		To:       msg.From,
		Seq:      msg.Seq,
		Progress: DefaultRetryAfterMs,
	})
}

// ROConn is the two-method connection HandleRO serves: a mux stream, an
// endpoint, or anything request-shaped in tests.
type ROConn interface {
	Send(m *transport.Message) error
	Recv() (*transport.Message, error)
}

// HandleRO serves read-only pulls arriving on conn until it closes,
// submitting each to the reader pool (or serving inline when the pool
// is disabled). Run it in its own goroutine, one per accepted mux
// stream; any number may run concurrently. Returns nil on a clean
// close.
//
//lint:ignore ctxcheck closing the stream is the cancellation surface: Recv unblocks with ErrClosed on session or server shutdown
func (s *Server) HandleRO(conn ROConn) error {
	for {
		msg, err := conn.Recv()
		if err != nil {
			if errors.Is(err, transport.ErrClosed) {
				return nil
			}
			return err
		}
		if msg.Type != transport.MsgPullRO {
			transport.ReleaseReceived(msg)
			continue
		}
		if s.roQueue != nil {
			s.submitRO(msg, conn)
			continue
		}
		err = s.handlePullRO(msg, conn)
		transport.ReleaseReceived(msg)
		if err != nil {
			return err
		}
	}
}

// maybePublishSnapshot republishes the RO snapshot at apply-wave
// boundaries once V_train has advanced SnapshotEvery ticks past the
// last publish (or the key set changed size under elastic migration).
// Called only from the apply goroutine at quiescence points.
func (s *Server) maybePublishSnapshot() {
	if s.cfg.SnapshotEvery < 0 {
		return
	}
	every := s.cfg.SnapshotEvery
	if every == 0 {
		every = 1
	}
	vt := s.ctrl.VTrain()
	if vt-s.lastPub < every && len(s.shard.Keys()) == len(s.shard.ROSnapshot().Keys()) {
		return
	}
	var start time.Time
	if s.metrics.on {
		start = time.Now()
	}
	sn := s.shard.PublishSnapshot(vt)
	s.lastPub = vt
	s.metrics.snapshotEpoch.Set(int64(sn.Epoch))
	if s.metrics.on {
		s.metrics.snapshotPublish.Observe(time.Since(start))
	}
}

// ROClient issues read-only pulls over one ROConn (a mux stream, an
// endpoint, anything request-shaped), tracking the highest epoch it has
// seen so repeated pulls are monotone: a later Pull never observes an
// older snapshot.
type ROClient struct {
	conn     ROConn
	server   int
	seq      uint64
	minEpoch uint32
}

// NewROClient wraps conn as a read-only pull client of server m.
func NewROClient(conn ROConn, server int) *ROClient {
	return &ROClient{conn: conn, server: server}
}

// Epoch returns the highest snapshot epoch stamp observed so far.
func (c *ROClient) Epoch() uint32 { return c.minEpoch }

// Pull fetches the current whole-shard snapshot into dst (when non-nil)
// and returns its epoch stamp and V_train cut, honoring retry-after
// backoff until ctx expires.
func (c *ROClient) Pull(ctx context.Context, dst []float64) (epoch uint32, vtrain int, err error) {
	return c.PullKeys(ctx, nil, dst)
}

// PullKeys is Pull restricted to the given keys (nil = whole shard);
// dst, when non-nil, receives the concatenated segments in key order.
func (c *ROClient) PullKeys(ctx context.Context, keys []keyrange.Key, dst []float64) (epoch uint32, vtrain int, err error) {
	for {
		c.seq++
		req := &transport.Message{
			Type: transport.MsgPullRO,
			To:   transport.Server(c.server),
			Seq:  c.seq,
			View: c.minEpoch,
			Keys: keys,
		}
		if err := c.conn.Send(req); err != nil {
			return 0, 0, err
		}
		resp, err := c.await(ctx)
		if err != nil {
			return 0, 0, err
		}
		if resp.Type == transport.MsgPullROResp {
			if dst != nil {
				copy(dst, resp.Vals)
			}
			epoch, vtrain = resp.View, int(resp.Progress)
			if epoch > c.minEpoch {
				c.minEpoch = epoch
			}
			transport.ReleaseReceived(resp)
			return epoch, vtrain, nil
		}
		wait := time.Duration(resp.Progress) * time.Millisecond
		transport.ReleaseReceived(resp)
		if wait <= 0 {
			wait = time.Millisecond
		}
		timer := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			timer.Stop()
			return 0, 0, ctx.Err()
		case <-timer.C:
		}
	}
}

// await receives the answer for the client's outstanding seq.
func (c *ROClient) await(ctx context.Context) (*transport.Message, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		m, err := c.conn.Recv()
		if err != nil {
			return nil, err
		}
		switch m.Type {
		case transport.MsgPullROResp, transport.MsgPullRORetry:
			if m.Seq == c.seq {
				return m, nil
			}
		}
		transport.ReleaseReceived(m)
	}
}
