package core

import (
	"encoding/binary"
	"math"
	"testing"

	"github.com/fluentps/fluentps/internal/keyrange"
	"github.com/fluentps/fluentps/internal/syncmodel"
	"github.com/fluentps/fluentps/internal/transport"
)

// fuzzFloats reinterprets fuzz bytes as the float64 words of a payload;
// fuzzBytes is its inverse, for building seed corpora from hand-laid
// frames.
func fuzzFloats(data []byte) []float64 {
	vals := make([]float64, 0, len(data)/8)
	for off := 0; off+8 <= len(data); off += 8 {
		vals = append(vals, math.Float64frombits(binary.LittleEndian.Uint64(data[off:])))
	}
	return vals
}

func fuzzBytes(vals []float64) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	return b
}

// fuzzWaveLayout is the fixed key layout every fuzzed wave decodes
// against: three keys of sizes 2, 3, 1.
func fuzzWaveLayout() *keyrange.Layout {
	return keyrange.MustLayout([]int{2, 3, 1})
}

// waveSeed hand-lays a valid replication frame for the fuzz corpus,
// mirroring encodeWave's layout: vtrain, specOK, 5×spec, nProgress,
// progress…, nCounts, (round,count)…, nPairs, (worker,seq)…, one counter
// per key, concatenated segments.
func waveSeed(keys []byte, spec []float64, progress, counts, pairs []float64, segs int) []byte {
	vals := []float64{5, 1}
	vals = append(vals, spec...)
	vals = append(vals, float64(len(progress)))
	vals = append(vals, progress...)
	vals = append(vals, float64(len(counts)/2))
	vals = append(vals, counts...)
	vals = append(vals, float64(len(pairs)/2))
	vals = append(vals, pairs...)
	for range keys {
		vals = append(vals, 1)
	}
	for i := 0; i < segs; i++ {
		vals = append(vals, float64(i)/8)
	}
	return fuzzBytes(vals)
}

// FuzzDecodeWave: a replication frame assembled from arbitrary bytes must
// never panic the decoder, and frames that decode must satisfy the wave
// invariants (per-key counters and segment lengths match the key list).
func FuzzDecodeWave(f *testing.F) {
	layout := fuzzWaveLayout()
	spec := syncmodel.SSP(2)
	sp, _ := syncmodel.SpecOf(spec)
	specVals := []float64{float64(sp.Kind), float64(sp.S), sp.C, float64(sp.Min), float64(sp.Max)}
	// Delta wave over keys 0 and 2 (sizes 2+1), two workers.
	f.Add([]byte{0, 2}, false,
		waveSeed([]byte{0, 2}, specVals, []float64{7, 6}, []float64{5, 1}, []float64{0, 42}, 3))
	// Snapshot over all keys, no spec (specOK=0 path needs its own seed).
	all := waveSeed([]byte{0, 1, 2}, specVals, []float64{3, 3, 3}, nil, []float64{1, 9}, 6)
	all[8] = 0 // flip specOK
	f.Add([]byte{0, 1, 2}, true, all)
	// Empty wave: no keys, no segments.
	f.Add([]byte{}, false, waveSeed(nil, []float64{0, 0, 0, 0, 0}, nil, nil, nil, 0))
	// Truncated header.
	f.Add([]byte{1}, false, fuzzBytes([]float64{1, 0, 0}))
	// wire.ReadLen boundary: the (round, count) words are exactly the
	// last words of the frame, so nCounts == len(rest)/2 — the largest
	// count ReadLen may accept.
	boundary := waveSeed(nil, specVals, nil, []float64{5, 1}, nil, 0)
	f.Add([]byte{}, false, boundary[:len(boundary)-8])
	// …and a hostile count whose 2*n product would overflow int must be
	// rejected by the division-based bound, not slip past it.
	f.Add([]byte{}, false, fuzzBytes([]float64{5, 0, 0, 0, 0, 0, 0, 0, float64(1 << 62), 0, 0}))
	f.Fuzz(func(t *testing.T, keysRaw []byte, snapshot bool, payload []byte) {
		if len(keysRaw) > 64 {
			keysRaw = keysRaw[:64]
		}
		keys := make([]keyrange.Key, len(keysRaw))
		for i, b := range keysRaw {
			// Mostly in-layout keys, occasionally one past the end so the
			// out-of-layout rejection path stays exercised.
			keys[i] = keyrange.Key(int(b) % (layout.NumKeys() + 1))
		}
		msg := &transport.Message{
			Type: transport.MsgReplicate,
			Seq:  3,
			Keys: keys,
			Vals: fuzzFloats(payload),
		}
		if snapshot {
			msg.Progress = 1
		}
		w, err := decodeWave(layout, msg)
		if err != nil {
			return
		}
		if w.snapshot != snapshot {
			t.Fatalf("snapshot flag lost: sent %v, decoded %v", snapshot, w.snapshot)
		}
		if len(w.perKey) != len(w.keys) {
			t.Fatalf("decoded %d counters for %d keys", len(w.perKey), len(w.keys))
		}
		need := 0
		for _, k := range w.keys {
			if int(k) >= layout.NumKeys() {
				t.Fatalf("decoder accepted key %d outside the %d-key layout", k, layout.NumKeys())
			}
			need += layout.KeySize(k)
		}
		if len(w.vals) != need {
			t.Fatalf("decoded %d segment values for keys needing %d", len(w.vals), need)
		}
	})
}

// FuzzDecodeShardState: arbitrary stats payloads must never panic, and
// payloads that decode must re-encode to a stable frame. The corpus seeds
// all three wire versions: legacy v1 (11 values, no model fields), v2
// (17, no read-tier fields), and v3 (19).
func FuzzDecodeShardState(f *testing.F) {
	full := ShardState{
		VTrain: 12, MinProgress: 11, MaxProgress: 14, CountAtRound: 3,
		Buffered: 1, Pulls: 120, Pushes: 118, DPRs: 7, Dropped: 2,
		DedupHits: 5, Keys: 4,
		ModelKind: int(syncmodel.KindDSPS), ModelS: 3, ModelMin: 1, ModelMax: 8,
		ModelC: 0.25, Switches: 2,
		SnapshotEpoch: 42, ROPulls: 900,
	}
	v3 := full.encode(nil)
	f.Add(fuzzBytes(v3))
	f.Add(fuzzBytes(v3[:shardStateLenV2])) // the v2 prefix is a valid v2 frame
	f.Add(fuzzBytes(v3[:shardStateLenV1])) // the v1 prefix is a valid v1 frame
	f.Add(fuzzBytes([]float64{1, 2, 3}))   // wrong length: must error, not panic
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := decodeShardState(fuzzFloats(data))
		if err != nil {
			return
		}
		enc := st.encode(nil)
		st2, err := decodeShardState(enc)
		if err != nil {
			t.Fatalf("re-encoded state does not decode: %v", err)
		}
		enc2 := st2.encode(nil)
		for i := range enc {
			// Bitwise: ModelC may legitimately be NaN.
			if math.Float64bits(enc[i]) != math.Float64bits(enc2[i]) {
				t.Fatalf("encode not stable at word %d: %x -> %x",
					i, math.Float64bits(enc[i]), math.Float64bits(enc2[i]))
			}
		}
	})
}
