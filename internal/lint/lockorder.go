package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// lockorder flags mutexes held across operations that can block
// indefinitely: channel sends/receives, select (without default),
// sync.WaitGroup.Wait, and blocking transport calls (Endpoint.Send/Recv,
// transport.SendOwned/SendRetained). Holding a lock across any of these
// is the deadlock shape the server's feeder/apply split exists to
// prevent: the blocked goroutine owns the lock the unblocking goroutine
// needs. sync.Cond.Wait is exempt (it releases the mutex while parked).
//
// Findings in _test.go files are warnings, not failures — test-only lock
// smells get a tracked list without flaking tier-1 (see ISSUE deflake
// guard).
//
// The tracker is lexical and per-function: Lock/RLock adds the receiver
// expression to the held set, Unlock/RUnlock removes it, `defer
// mu.Unlock()` keeps it held to the end of the function (that is the
// point: the lock really is held across everything that follows).
// Branch bodies are analyzed with a copy of the held set.

// LockOrder returns the lockorder analyzer.
func LockOrder() *Analyzer {
	return &Analyzer{
		Name: "lockorder",
		Doc:  "no mutex held across channel operations, WaitGroup.Wait, or blocking transport calls",
		Run:  runLockOrder,
	}
}

func runLockOrder(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					lockAnalyzeFunc(pass, n.Body)
				}
				return false
			case *ast.FuncLit:
				lockAnalyzeFunc(pass, n.Body)
				return false
			}
			return true
		})
	}
}

type lockInfo struct {
	name string // rendered receiver expression, e.g. "w.mu"
	line int
}

type lockSet map[string]lockInfo

func (s lockSet) clone() lockSet {
	c := make(lockSet, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

type lockWalker struct {
	pass *Pass
	info *types.Info
}

func lockAnalyzeFunc(pass *Pass, body *ast.BlockStmt) {
	w := &lockWalker{pass: pass, info: pass.Pkg.Info}
	w.walkStmts(body.List, make(lockSet))
}

// mutexMethod classifies call as a sync.Mutex/sync.RWMutex lock or
// unlock, returning the held-set key and whether it acquires.
func (w *lockWalker) mutexMethod(call *ast.CallExpr) (key string, acquire, ok bool) {
	sel, selOk := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !selOk {
		return "", false, false
	}
	var acq bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acq = true
	case "Unlock", "RUnlock":
		acq = false
	default:
		return "", false, false
	}
	fn, fnOk := calleeObj(w.info, call).(*types.Func)
	if !fnOk {
		return "", false, false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", false, false
	}
	path, name := namedTypePath(recv.Type())
	if path != "sync" || (name != "Mutex" && name != "RWMutex") {
		return "", false, false
	}
	return types.ExprString(sel.X), acq, true
}

// blockingOp classifies call expressions that can block indefinitely.
func (w *lockWalker) blockingOp(call *ast.CallExpr) string {
	if isPkgCall(w.info, call, "internal/transport", "SendOwned") {
		return "transport.SendOwned"
	}
	if isPkgCall(w.info, call, "internal/transport", "SendRetained") {
		return "transport.SendRetained"
	}
	if fn := methodCall(w.info, call, "Wait"); fn != nil {
		path, name := namedTypePath(fn.Type().(*types.Signature).Recv().Type())
		if path == "sync" && name == "WaitGroup" {
			return "sync.WaitGroup.Wait"
		}
	}
	if fn := methodCall(w.info, call, "Recv"); fn != nil {
		sig := fn.Type().(*types.Signature)
		if sig.Results().Len() >= 1 && isMessagePtr(sig.Results().At(0).Type()) {
			return "a blocking transport Recv"
		}
	}
	if fn := methodCall(w.info, call, "Send"); fn != nil {
		sig := fn.Type().(*types.Signature)
		if sig.Params().Len() >= 1 && isMessagePtr(sig.Params().At(0).Type()) {
			return "a blocking transport Send"
		}
	}
	return ""
}

func (w *lockWalker) report(held lockSet, pos token.Pos, op string) {
	// Deterministic pick: report against the earliest-acquired lock.
	var best lockInfo
	for _, info := range held {
		if best.name == "" || info.line < best.line || (info.line == best.line && info.name < best.name) {
			best = info
		}
	}
	msg := "mutex %s (locked at line %d) held across %s; release it before blocking"
	if w.pass.Pkg.IsTestPos(pos) {
		w.pass.Warnf("lockorder", pos, msg, best.name, best.line, op)
	} else {
		w.pass.Reportf("lockorder", pos, msg, best.name, best.line, op)
	}
}

// scan inspects an expression for blocking operations while locks are
// held, and for nested function literals (which start lock-free).
func (w *lockWalker) scan(held lockSet, n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			lockAnalyzeFunc(w.pass, m.Body)
			return false
		case *ast.UnaryExpr:
			if m.Op == token.ARROW && len(held) > 0 {
				w.report(held, m.Pos(), "a channel receive")
			}
		case *ast.CallExpr:
			if len(held) > 0 {
				if op := w.blockingOp(m); op != "" {
					w.report(held, m.Pos(), op)
				}
			}
		}
		return true
	})
}

func (w *lockWalker) walkStmts(stmts []ast.Stmt, held lockSet) {
	for _, s := range stmts {
		w.walkStmt(s, held)
	}
}

func (w *lockWalker) walkStmt(s ast.Stmt, held lockSet) {
	switch s := s.(type) {
	case nil:
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if key, acquire, ok := w.mutexMethod(call); ok {
				if acquire {
					held[key] = lockInfo{name: key, line: w.pass.Pkg.Fset.Position(call.Pos()).Line}
				} else {
					delete(held, key)
				}
				return
			}
		}
		w.scan(held, s.X)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held for the rest of the
		// function; any other deferred call is scanned without locks
		// (it runs at return, ordering with unlocks is unknowable here).
		if _, _, ok := w.mutexMethod(s.Call); ok {
			return
		}
		w.scan(make(lockSet), s.Call)
	case *ast.GoStmt:
		w.scan(make(lockSet), s.Call)
	case *ast.SendStmt:
		if len(held) > 0 {
			w.report(held, s.Arrow, "a channel send")
		}
		w.scan(held, s.Chan)
		w.scan(held, s.Value)
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if len(held) > 0 && !hasDefault {
			w.report(held, s.Pos(), "a blocking select")
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				sub := held.clone()
				// The comm statements themselves are part of the select;
				// only scan their sub-expressions for nested lits.
				if cc.Comm != nil {
					switch comm := cc.Comm.(type) {
					case *ast.SendStmt:
						w.scan(make(lockSet), comm.Chan)
						w.scan(make(lockSet), comm.Value)
					case *ast.AssignStmt:
						for _, r := range comm.Rhs {
							if ue, ok := ast.Unparen(r).(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
								w.scan(make(lockSet), ue.X)
							}
						}
					case *ast.ExprStmt:
						if ue, ok := ast.Unparen(comm.X).(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
							w.scan(make(lockSet), ue.X)
						}
					}
				}
				w.walkStmts(cc.Body, sub)
			}
		}
	case *ast.RangeStmt:
		if len(held) > 0 {
			if t, ok := w.info.Types[s.X]; ok {
				if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
					w.report(held, s.Pos(), "a range over a channel")
				}
			}
		}
		w.scan(held, s.X)
		w.walkStmts(s.Body.List, held.clone())
	case *ast.BlockStmt:
		w.walkStmts(s.List, held)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, held)
	case *ast.IfStmt:
		w.walkStmt(s.Init, held)
		w.scan(held, s.Cond)
		w.walkStmts(s.Body.List, held.clone())
		if s.Else != nil {
			w.walkStmt(s.Else, held.clone())
		}
	case *ast.SwitchStmt:
		w.walkStmt(s.Init, held)
		w.scan(held, s.Tag)
		w.walkCaseBodies(s.Body.List, held)
	case *ast.TypeSwitchStmt:
		w.walkStmt(s.Init, held)
		w.walkCaseBodies(s.Body.List, held)
	case *ast.ForStmt:
		w.walkStmt(s.Init, held)
		w.scan(held, s.Cond)
		body := held.clone()
		w.walkStmts(s.Body.List, body)
		w.walkStmt(s.Post, body)
	default:
		w.scan(held, s)
	}
}

func (w *lockWalker) walkCaseBodies(clauses []ast.Stmt, held lockSet) {
	for _, c := range clauses {
		if cc, ok := c.(*ast.CaseClause); ok {
			for _, e := range cc.List {
				w.scan(held, e)
			}
			w.walkStmts(cc.Body, held.clone())
		}
	}
}
