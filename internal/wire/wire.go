// Package wire holds the shared primitives for the repo's hand-rolled
// float64-word wire formats. Every count read off the wire must be
// bounds-checked against the remaining buffer before anything is
// allocated or sliced with it — and the check must divide the buffer,
// never multiply the count, because a hostile count times a per-item
// width can overflow int and slip past a plain length comparison (the
// decodeWave bug fuzzing caught in PR 8). ReadLen is that check, done
// once, correctly; codeccheck blesses values it returns as guarded.
package wire

// ReadLen pops a count from the front of a float64 word stream and
// validates it against the words that remain: the count must be an exact
// non-negative integer with count*per ≤ len(rest), checked as
// count ≤ len(rest)/per so the multiplication can never overflow. per is
// the minimum number of words each counted item occupies (1 for scalar
// lists, 2 for pairs; variable-size items pass their floor). On success
// the count and the stream after the count word are returned; ok=false
// means the stream is truncated or the count is hostile, and the caller
// must reject the frame without allocating.
func ReadLen(vals []float64, per int) (n int, rest []float64, ok bool) {
	if per <= 0 || len(vals) == 0 {
		return 0, nil, false
	}
	f := vals[0]
	n = int(f)
	rest = vals[1:]
	if float64(n) != f || n < 0 || n > len(rest)/per {
		return 0, nil, false
	}
	return n, rest, true
}
