package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"
)

// DebugPath is the HTTP path the JSON snapshot is served under.
const DebugPath = "/debug/fluentps"

// Handler returns an http.Handler serving the registry's JSON snapshot at
// DebugPath (and a one-line pointer at /). Safe on the Nop registry: it
// serves empty instrument maps.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(DebugPath, func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := r.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprintf(w, "fluentps telemetry — see %s\n", DebugPath)
	})
	return mux
}

// DebugServer is a running telemetry HTTP endpoint; Close shuts it down.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// ListenAndServe starts serving the registry's debug endpoint on addr
// (":0" picks a free port — read it back via Addr) in a background
// goroutine.
func ListenAndServe(addr string, r *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: r.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return &DebugServer{ln: ln, srv: srv}, nil
}

// Addr returns the address the debug endpoint is listening on.
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the endpoint.
func (d *DebugServer) Close() error { return d.srv.Close() }

// Scrape fetches and decodes one node's snapshot from its debug endpoint.
// addr is a host:port (the node's -debugAddr); the scheme and path are
// filled in here so callers pass the same string they passed the node.
func Scrape(addr string) (Snapshot, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + addr + DebugPath)
	if err != nil {
		return Snapshot{}, fmt.Errorf("telemetry: scrape %s: %w", addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Snapshot{}, fmt.Errorf("telemetry: scrape %s: HTTP %d", addr, resp.StatusCode)
	}
	var s Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("telemetry: scrape %s: %w", addr, err)
	}
	return s, nil
}
