package main

import (
	"context"
	"fmt"
	"testing"

	"github.com/fluentps/fluentps/internal/core"
	"github.com/fluentps/fluentps/internal/keyrange"
	"github.com/fluentps/fluentps/internal/syncmodel"
	"github.com/fluentps/fluentps/internal/transport"
)

// runHotpath benchmarks one full synchronous training step — push
// scattered across two shards, acks awaited, parameters pulled and
// reassembled — over the in-process transport, and reports time and
// allocation cost per step. It is the CLI face of the repo's
// BenchmarkPushPullHotPath: run it after touching the transport codec,
// the message pool, or the worker pipeline.
func runHotpath(ctx context.Context) error {
	layout, err := keyrange.EPSLayout(4096, 8)
	if err != nil {
		return err
	}
	assign, err := keyrange.EPS(layout, 2)
	if err != nil {
		return err
	}
	net := transport.NewChanNetwork(256)
	for m := 0; m < 2; m++ {
		srv, err := core.NewServer(net.Endpoint(transport.Server(m)), core.ServerConfig{
			Rank: m, NumWorkers: 1, Layout: layout, Assignment: assign,
			Model: syncmodel.ASP(), Drain: syncmodel.Lazy,
			Init: func(k keyrange.Key, seg []float64) {},
		})
		if err != nil {
			return err
		}
		go srv.Run()
	}
	w, err := core.NewWorker(net.Endpoint(transport.Worker(0)), core.WorkerConfig{
		Rank: 0, Layout: layout, Assignment: assign,
	})
	if err != nil {
		return err
	}
	defer w.Close()
	delta := make([]float64, layout.TotalDim())
	params := make([]float64, layout.TotalDim())
	step := 0
	var stepErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := w.SPush(ctx, step, delta); err != nil {
				stepErr = err
				b.FailNow()
			}
			if err := w.SPull(ctx, step, params); err != nil {
				stepErr = err
				b.FailNow()
			}
			step++
		}
	})
	if stepErr != nil {
		return stepErr
	}
	fmt.Printf("push+pull step over 2 shards, %d params:\n", layout.TotalDim())
	fmt.Printf("  %12d steps\n  %12d ns/op\n  %12d B/op\n  %12d allocs/op\n",
		res.N, res.NsPerOp(), res.AllocedBytesPerOp(), res.AllocsPerOp())
	ep := net.Endpoint(transport.Worker(99))
	for m := 0; m < 2; m++ {
		_ = ep.Send(&transport.Message{Type: transport.MsgShutdown, To: transport.Server(m)})
	}
	ep.Close()
	return nil
}
