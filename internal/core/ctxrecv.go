package core

import (
	"context"

	"github.com/fluentps/fluentps/internal/transport"
)

// recvCtx drains one message from ep, honoring ctx cancellation.
//
// transport.Endpoint.Recv is the blocking primitive and cannot carry a
// context without breaking every implementation, so control-plane APIs
// (Register, QueryStats, Rebalance, SetCondition, the scheduler loop)
// wrap it here: the Recv runs in its own goroutine and the caller waits
// on whichever of {response, ctx.Done()} fires first. On cancellation
// the in-flight Recv keeps running until the endpoint delivers or
// closes; a drain goroutine releases its late message so the pool
// ownership discipline holds even for abandoned receives.
func recvCtx(ctx context.Context, ep transport.Endpoint) (*transport.Message, error) {
	type recvResult struct {
		msg *transport.Message
		err error
	}
	done := make(chan recvResult, 1)
	go func() {
		m, err := ep.Recv()
		done <- recvResult{m, err}
	}()
	select {
	case <-ctx.Done():
		go func() {
			r := <-done
			transport.ReleaseReceived(r.msg)
		}()
		return nil, ctx.Err()
	case r := <-done:
		return r.msg, r.err
	}
}
