package core

import (
	"context"
	"testing"
	"time"

	"github.com/fluentps/fluentps/internal/syncmodel"
	"github.com/fluentps/fluentps/internal/transport"
)

func TestQueryStatsReflectsLiveState(t *testing.T) {
	net, _, layout, assign := testServer(t, syncmodel.SSP(1), syncmodel.Lazy, 2)
	w0, _ := NewWorker(net.Endpoint(transport.Worker(0)), WorkerConfig{Rank: 0, Layout: layout, Assignment: assign})
	defer w0.Close()
	admin := net.Endpoint(transport.Worker(7))
	defer admin.Close()

	st, err := QueryStats(context.Background(), admin, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.VTrain != 0 || st.Pushes != 0 || st.MinProgress != -1 {
		t.Fatalf("fresh state %+v", st)
	}
	if st.Keys == 0 {
		t.Error("server reports no keys")
	}

	// One push + one passing pull, then a blocked pull.
	if err := w0.SPush(tctx, 0, make([]float64, 5)); err != nil {
		t.Fatal(err)
	}
	if err := w0.SPull(tctx, 0, make([]float64, 5)); err != nil {
		t.Fatal(err)
	}
	if err := w0.SPush(tctx, 1, make([]float64, 5)); err != nil {
		t.Fatal(err)
	}
	go w0.SPull(tctx, 1, make([]float64, 5)) // blocks under SSP(1)

	waitUntil(t, 5*time.Second, "blocked pull to appear in the stats", func() bool {
		st, err = QueryStats(context.Background(), admin, 0)
		if err != nil {
			t.Fatal(err)
		}
		return st.Buffered == 1
	})
	if st.Buffered != 1 || st.DPRs != 1 {
		t.Fatalf("state after block %+v", st)
	}
	if st.MaxProgress != 1 || st.Pushes != 2 || st.Pulls != 2 {
		t.Fatalf("progress state %+v", st)
	}
	if st.CountAtRound != 1 {
		t.Fatalf("CountAtRound = %d, want 1 (only worker 0 pushed round 0)", st.CountAtRound)
	}
}

func TestDecodeShardStateValidation(t *testing.T) {
	if _, err := decodeShardState([]float64{1, 2, 3}); err == nil {
		t.Error("short payload accepted")
	}
}
