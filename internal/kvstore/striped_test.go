package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/fluentps/fluentps/internal/keyrange"
)

func stripedLayout(t *testing.T, keys, dim int) *keyrange.Layout {
	t.Helper()
	sizes := make([]int, keys)
	for i := range sizes {
		sizes[i] = dim
	}
	return keyrange.MustLayout(sizes)
}

func allKeys(l *keyrange.Layout) []keyrange.Key {
	ks := make([]keyrange.Key, l.NumKeys())
	for i := range ks {
		ks[i] = keyrange.Key(i)
	}
	return ks
}

func TestStripeOfPartitionsAllKeys(t *testing.T) {
	layout := stripedLayout(t, 257, 3)
	for _, stripes := range []int{1, 2, 3, 4, 7, 8, 64} {
		s := NewStripedShard(layout, allKeys(layout), nil, stripes)
		want := normStripes(stripes)
		if got := s.NumStripes(); got != want {
			t.Fatalf("stripes=%d: NumStripes=%d, want %d (power of two)", stripes, got, want)
		}
		seen := make([]int, s.NumStripes())
		for _, k := range s.Keys() {
			st := s.StripeOf(k)
			if st < 0 || st >= s.NumStripes() {
				t.Fatalf("stripes=%d: StripeOf(%d)=%d out of range", stripes, k, st)
			}
			seen[st]++
		}
		total := 0
		for _, n := range seen {
			total += n
		}
		if total != layout.NumKeys() {
			t.Fatalf("stripes=%d: partition lost keys: %d != %d", stripes, total, layout.NumKeys())
		}
		// The Fibonacci hash must actually spread dense keys: with 257
		// keys over ≥ 2 stripes, no stripe may own everything.
		if s.NumStripes() > 1 {
			for st, n := range seen {
				if n == layout.NumKeys() {
					t.Fatalf("stripes=%d: stripe %d owns all keys (hash does not spread)", stripes, st)
				}
			}
		}
	}
}

// TestStripedShardMatchesSingleStripe: the same operation sequence on a
// 1-stripe and an 8-stripe shard must produce identical segments and
// update counters — striping is a locking detail, not a semantic one.
func TestStripedShardMatchesSingleStripe(t *testing.T) {
	layout := stripedLayout(t, 16, 5)
	init := func(k keyrange.Key, seg []float64) {
		for i := range seg {
			seg[i] = float64(k)
		}
	}
	a := NewShard(layout, allKeys(layout), init)
	b := NewStripedShard(layout, allKeys(layout), init, 8)
	grad := []float64{1, 2, 3, 4, 5}
	for round := 0; round < 3; round++ {
		for _, k := range allKeys(layout) {
			if err := a.ApplyGrad(k, grad, 0.5); err != nil {
				t.Fatal(err)
			}
			if err := b.ApplyGrad(k, grad, 0.5); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, k := range allKeys(layout) {
		sa, _ := a.Segment(k)
		sb, _ := b.Segment(k)
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("key %d elem %d: 1-stripe %v != 8-stripe %v", k, i, sa[i], sb[i])
			}
		}
		if a.Updates(k) != b.Updates(k) {
			t.Fatalf("key %d: updates %d != %d", k, a.Updates(k), b.Updates(k))
		}
	}
}

// TestStripedShardConcurrentApply is the striped-store race stress: N
// goroutines apply gradients to overlapping key sets through ApplyGrad and
// ApplyBatch concurrently. Run under -race -count=5 (make race-stress).
// Integer-valued gradients make every interleaving's arithmetic exact, so
// final segments and update counters are checked for equality, not
// tolerance.
func TestStripedShardConcurrentApply(t *testing.T) {
	const (
		goroutines = 8
		rounds     = 50
		dim        = 32
	)
	layout := stripedLayout(t, 24, dim)
	s := NewStripedShard(layout, allKeys(layout), nil, 8)
	grad := make([]float64, dim)
	for i := range grad {
		grad[i] = 1
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Even goroutines walk their own disjoint slice of keys via
			// ApplyGrad; odd goroutines batch-apply to an overlapping
			// window so same-stripe contention actually happens.
			if g%2 == 0 {
				for r := 0; r < rounds; r++ {
					for k := g; k < layout.NumKeys(); k += goroutines {
						if err := s.ApplyGrad(keyrange.Key(k), grad, 1); err != nil {
							t.Error(err)
							return
						}
					}
				}
				return
			}
			for r := 0; r < rounds; r++ {
				for st := 0; st < s.NumStripes(); st++ {
					var items []BatchItem
					for k := (g - 1); k < layout.NumKeys(); k += goroutines {
						if s.StripeOf(keyrange.Key(k)) != st {
							continue
						}
						items = append(items, BatchItem{Key: keyrange.Key(k), Grads: [][]float64{grad, grad}})
					}
					if len(items) == 0 {
						continue
					}
					if err := s.ApplyBatch(st, 1, items); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// Expected coverage per key: even goroutine g applies `rounds` single
	// gradients to keys ≡ g (mod goroutines); odd goroutine g batch-applies
	// rounds×2 gradients to keys ≡ g-1 (mod goroutines). So every key is
	// touched by exactly one goroutine of each kind.
	for _, k := range allKeys(layout) {
		var wantUpdates uint64
		for g := 0; g < goroutines; g++ {
			if g%2 == 0 && int(k)%goroutines == g {
				wantUpdates += uint64(rounds)
			}
			if g%2 == 1 && int(k)%goroutines == g-1 {
				wantUpdates += uint64(2 * rounds)
			}
		}
		if got := s.Updates(k); got != wantUpdates {
			t.Fatalf("key %d: %d updates, want %d", k, got, wantUpdates)
		}
		seg, err := s.Segment(k)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range seg {
			if v != float64(wantUpdates) {
				t.Fatalf("key %d elem %d: value %v, want %v (exact integer sums)", k, i, v, float64(wantUpdates))
			}
		}
	}
}

func TestApplyGradDimMismatchTyped(t *testing.T) {
	layout := stripedLayout(t, 4, 3)
	s := NewStripedShard(layout, allKeys(layout), nil, 4)
	err := s.ApplyGrad(1, []float64{1, 2}, 1)
	if err == nil {
		t.Fatal("short gradient accepted")
	}
	if !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("err %v does not unwrap to ErrDimMismatch", err)
	}
	var de *DimError
	if !errors.As(err, &de) {
		t.Fatalf("err %v is not a *DimError", err)
	}
	if de.Key != 1 || de.Got != 2 || de.Want != 3 || de.Payload {
		t.Fatalf("DimError fields: %+v", de)
	}
	// Nothing may have been applied or counted.
	if s.Updates(1) != 0 {
		t.Fatalf("rejected gradient bumped the update counter to %d", s.Updates(1))
	}
	seg, _ := s.Segment(1)
	for i, v := range seg {
		if v != 0 {
			t.Fatalf("rejected gradient mutated segment elem %d: %v", i, v)
		}
	}
}

func TestSetDimMismatchTyped(t *testing.T) {
	layout := stripedLayout(t, 4, 3)
	s := NewShard(layout, allKeys(layout), nil)
	if err := s.Set(2, []float64{9, 9}); !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("Set short: err %v, want ErrDimMismatch", err)
	}
	if err := s.Set(2, []float64{9, 9, 9, 9}); !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("Set long: err %v, want ErrDimMismatch", err)
	}
	seg, _ := s.Segment(2)
	for i, v := range seg {
		if v != 0 {
			t.Fatalf("rejected Set mutated segment elem %d: %v", i, v)
		}
	}
	if err := s.Set(2, []float64{1, 2, 3}); err != nil {
		t.Fatalf("exact-size Set rejected: %v", err)
	}
}

func TestTypedErrorsAcrossAPI(t *testing.T) {
	layout := stripedLayout(t, 4, 3)
	s := NewShard(layout, allKeys(layout), nil)
	cases := []struct {
		name string
		err  error
		want error
	}{
		{"ApplyGrad unknown key", func() error { _, e := s.RemoveKey(3); _ = e; return s.ApplyGrad(3, []float64{1, 2, 3}, 1) }(), ErrUnknownKey},
		{"ApplyBatch dim", s.ApplyBatch(s.StripeOf(0), 1, []BatchItem{{Key: 0, Grads: [][]float64{{1}}}}), ErrDimMismatch},
		{"AddKey dim", s.AddKey(3, []float64{1}), ErrDimMismatch},
		{"ReadInto dim", func() error { _, e := s.ReadInto(0, make([]float64, 1)); return e }(), ErrDimMismatch},
		{"Scatter payload", Scatter(layout, make([]float64, layout.TotalDim()), []keyrange.Key{0}, []float64{1}), ErrDimMismatch},
		{"Scatter OOB key", Scatter(layout, make([]float64, layout.TotalDim()), []keyrange.Key{99}, []float64{1}), ErrUnknownKey},
		{"ApplyGradPayload short", s.ApplyGradPayload([]keyrange.Key{0}, []float64{1}, 1), ErrDimMismatch},
		{"ApplyGradPayload long", s.ApplyGradPayload([]keyrange.Key{0}, make([]float64, 5), 1), ErrDimMismatch},
		{"ApplyGradPayload OOB key", s.ApplyGradPayload([]keyrange.Key{77}, []float64{1, 2, 3}, 1), ErrUnknownKey},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !errors.Is(c.err, c.want) {
			t.Errorf("%s: err %v does not unwrap to %v", c.name, c.err, c.want)
		}
	}
}

func TestDimErrorMessage(t *testing.T) {
	e := &DimError{Op: "apply-grad", Key: 7, Got: 2, Want: 5}
	if got := e.Error(); got != "kvstore: apply-grad: key 7 has 2 scalars, want 5" {
		t.Fatalf("per-key message: %q", got)
	}
	p := &DimError{Op: "scatter", Payload: true, Got: 10, Want: 12}
	if got := p.Error(); got != "kvstore: scatter: payload has 10 scalars, keys consume 12" {
		t.Fatalf("payload message: %q", got)
	}
}

// TestStripedCheckpointRoundTrip: Save is stripe-agnostic — a snapshot
// written by an 8-stripe shard restores into 1- and 4-stripe shards with
// identical keys, segments, and update counters.
func TestStripedCheckpointRoundTrip(t *testing.T) {
	layout := stripedLayout(t, 12, 4)
	s := NewStripedShard(layout, allKeys(layout), func(k keyrange.Key, seg []float64) {
		for i := range seg {
			seg[i] = float64(k)*100 + float64(i)
		}
	}, 8)
	grad := []float64{1, 1, 1, 1}
	for _, k := range allKeys(layout) {
		for n := 0; n <= int(k); n++ {
			if err := s.ApplyGrad(k, grad, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	for _, stripes := range []int{1, 4} {
		got, err := LoadStripedShard(bytes.NewReader(buf.Bytes()), layout, stripes)
		if err != nil {
			t.Fatalf("stripes=%d: %v", stripes, err)
		}
		if fmt.Sprint(got.Keys()) != fmt.Sprint(s.Keys()) {
			t.Fatalf("stripes=%d: keys %v != %v", stripes, got.Keys(), s.Keys())
		}
		for _, k := range s.Keys() {
			if got.Updates(k) != s.Updates(k) {
				t.Fatalf("stripes=%d key %d: updates %d != %d", stripes, k, got.Updates(k), s.Updates(k))
			}
			a, _ := s.Segment(k)
			b, _ := got.Segment(k)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("stripes=%d key %d elem %d: %v != %v", stripes, k, i, b[i], a[i])
				}
			}
		}
	}
}
