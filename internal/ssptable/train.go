package ssptable

import (
	"fmt"
	"sync"

	"github.com/fluentps/fluentps/internal/dataset"
	"github.com/fluentps/fluentps/internal/mathx"
	"github.com/fluentps/fluentps/internal/mlmodel"
	"github.com/fluentps/fluentps/internal/optimizer"
)

// ClusterConfig describes an in-process SSPtable training run.
type ClusterConfig struct {
	Workers      int
	Model        mlmodel.Model
	Train, Test  *dataset.Dataset
	Staleness    int
	ScaleUpdates bool
	NewOptimizer func() optimizer.Optimizer
	BatchSize    int
	Iters        int
	// EvalEvery > 0 records test accuracy (of the table) every that many
	// iterations of worker 0.
	EvalEvery int
	Seed      int64
}

// AccPoint is one accuracy measurement during training.
type AccPoint struct {
	Iter int
	Acc  float64
}

// RunResult reports an SSPtable training run's outcome.
type RunResult struct {
	FinalLoss, FinalAcc float64
	History             []AccPoint
	Stats               Stats
}

// Run executes data-parallel training against a shared SSPtable.
func Run(cfg ClusterConfig) (*RunResult, error) {
	switch {
	case cfg.Workers < 1:
		return nil, fmt.Errorf("ssptable: need at least one worker")
	case cfg.Model == nil || cfg.Train == nil:
		return nil, fmt.Errorf("ssptable: model and training data are required")
	case cfg.BatchSize < 1 || cfg.Iters < 1:
		return nil, fmt.Errorf("ssptable: need positive batch size and iterations")
	case cfg.NewOptimizer == nil:
		return nil, fmt.Errorf("ssptable: an optimizer factory is required")
	}
	w0 := make([]float64, cfg.Model.Dim())
	cfg.Model.Init(mathx.RNG(cfg.Seed, "ssptable.init"), w0)
	table, err := New(Config{
		Workers:      cfg.Workers,
		Staleness:    cfg.Staleness,
		ScaleUpdates: cfg.ScaleUpdates,
	}, w0)
	if err != nil {
		return nil, err
	}

	var history []AccPoint
	var histMu sync.Mutex
	errs := make([]error, cfg.Workers)
	var wg sync.WaitGroup
	for n := 0; n < cfg.Workers; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			errs[n] = func() error {
				shard, err := cfg.Train.Shard(n, cfg.Workers)
				if err != nil {
					return err
				}
				opt := cfg.NewOptimizer()
				cache := table.NewCache()
				params := make([]float64, cfg.Model.Dim())
				grad := make([]float64, cfg.Model.Dim())
				delta := make([]float64, cfg.Model.Dim())
				rng := mathx.RNG(cfg.Seed, fmt.Sprintf("ssptable.worker.%d", n))
				for i := 0; i < cfg.Iters; i++ {
					if err := table.Get(cache, i, params); err != nil {
						return err
					}
					x, y := shard.Batch(rng, cfg.BatchSize)
					cfg.Model.Gradient(params, x, y, grad)
					opt.Delta(params, grad, delta)
					if err := table.Inc(delta); err != nil {
						return err
					}
					if err := table.Clock(n); err != nil {
						return err
					}
					if n == 0 && cfg.EvalEvery > 0 && cfg.Test != nil && (i+1)%cfg.EvalEvery == 0 {
						_, acc := cfg.Model.Evaluate(table.Snapshot(), cfg.Test)
						histMu.Lock()
						history = append(history, AccPoint{Iter: i + 1, Acc: acc})
						histMu.Unlock()
					}
				}
				return nil
			}()
		}(n)
	}
	wg.Wait()
	for n, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("ssptable: worker %d: %w", n, err)
		}
	}
	res := &RunResult{History: history, Stats: table.Stats()}
	if cfg.Test != nil {
		res.FinalLoss, res.FinalAcc = cfg.Model.Evaluate(table.Snapshot(), cfg.Test)
	}
	return res, nil
}
