// Package fixture exercises the //lint:ignore machinery end to end: a
// used directive silences its finding, a reason-less directive is
// rejected, and an unused directive is reported as stale.
package fixture

import "github.com/fluentps/fluentps/internal/transport"

var ep transport.Endpoint

func suppressedLeak() {
	//lint:ignore poolcheck fixture exercises the suppression path
	m, _ := ep.Recv()
	_ = m.Seq
}

func missingReason() {
	//lint:ignore poolcheck
	m := transport.NewMessage()
	transport.Release(m)
}

func unusedDirective() {
	//lint:ignore lockorder nothing on this line blocks
	_ = ep
}
