package experiments

import (
	"fmt"

	"github.com/fluentps/fluentps/internal/metrics"
	"github.com/fluentps/fluentps/internal/mlmodel"
	"github.com/fluentps/fluentps/internal/optimizer"
	"github.com/fluentps/fluentps/internal/sim"
	"github.com/fluentps/fluentps/internal/syncmodel"
)

func init() {
	register(&Experiment{
		ID:    "fig1",
		Title: "Fig 1: SSPtable (PMLS-Caffe) test accuracy vs iterations at 2/4/8/16 workers, same total batch",
		Paper: "2- and 4-worker runs converge; 8- and 16-worker runs collapse (<20% accuracy) under Bösen's raw update aggregation at fixed staleness.",
		Run:   runFig1,
	})
	register(&Experiment{
		ID:    "fig7",
		Title: "Fig 7: test accuracy at fixed iteration count, SSP s=3 — PMLS-Caffe vs FluentPS across cluster sizes",
		Paper: "FluentPS holds 75.9–76.7% at every N up to 64; PMLS-Caffe falls below 20% for N ≥ 8.",
		Run:   runFig7,
	})
}

// fig1Workload: the divergence experiment needs the non-linear proxy (a
// linear model is argmax-scale-invariant and cannot collapse; see
// ssptable package docs) and the raw-update learning rate regime.
func fig1Workload(seed int64) (workload, func() optimizer.Optimizer) {
	w := resNet56C10(seed)
	w.name = "AlexNet/CIFAR-10 (non-linear proxy)"
	return w, func() optimizer.Optimizer { return &optimizer.Momentum{LR: 0.02, Mu: 0.9} }
}

func runFig1(opts Options) (*Report, error) {
	w, opt := fig1Workload(opts.Seed)
	nIters := iters(opts, 800, 80)
	workerCounts := []int{2, 4, 8, 16}
	if opts.Quick {
		workerCounts = []int{2, 8}
	}

	table := &metrics.Table{
		Title:   "Fig 1 — SSPtable (Bösen) accuracy vs iterations, fixed total batch, s=3",
		Headers: []string{"N", "25% iters", "50% iters", "75% iters", "final"},
	}
	rep := &Report{}
	var small, large float64
	for _, n := range workerCounts {
		cfg := sim.Config{
			Arch:         sim.ArchSSPTable,
			Workers:      n,
			Servers:      1,
			Model:        w.model,
			Train:        w.train,
			Test:         w.test,
			NewOptimizer: opt,
			BatchSize:    realBatch(n) / 4,
			Iters:        nIters,
			Staleness:    3,
			ScaleUpdates: false, // Bösen applies deltas raw
			Compute:      cpuCompute(n),
			Net:          cpuNet(),
			EvalEvery:    nIters / 4,
			Seed:         opts.Seed,
		}
		if cfg.BatchSize < 1 {
			cfg.BatchSize = 1
		}
		res, err := sim.Run(cfg)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprint(n)}
		for i := 0; i < 3; i++ {
			if i < len(res.History) {
				row = append(row, metrics.F(res.History[i].Acc))
			} else {
				row = append(row, "-")
			}
		}
		row = append(row, metrics.F(res.FinalAcc))
		table.AddRow(row...)
		if n == workerCounts[0] {
			small = res.FinalAcc
		}
		large = res.FinalAcc
	}
	rep.Tables = append(rep.Tables, table)
	rep.Notef("accuracy at N=%d: %.3f vs N=%d: %.3f (paper: collapse below 0.2 for N≥8)",
		workerCounts[0], small, workerCounts[len(workerCounts)-1], large)
	return rep, nil
}

func runFig7(opts Options) (*Report, error) {
	seed := opts.Seed
	w, opt := fig1Workload(seed)
	nIters := iters(opts, 800, 60)
	workerCounts := []int{2, 4, 8, 16, 32, 64}
	if opts.Quick {
		workerCounts = []int{2, 8, 16}
	}

	table := &metrics.Table{
		Title:   "Fig 7 — final accuracy, SSP s=3: PMLS-Caffe (SSPtable) vs FluentPS",
		Headers: []string{"N", "PMLS-Caffe", "FluentPS"},
	}
	rep := &Report{}
	var fluentMin, fluentMax float64 = 1, 0
	var pmlsLargeMax float64
	for _, n := range workerCounts {
		batch := realBatch(n) / 4
		if batch < 1 {
			batch = 1
		}
		pmlsCfg := sim.Config{
			Arch:         sim.ArchSSPTable,
			Workers:      n,
			Servers:      1,
			Model:        w.model,
			Train:        w.train,
			Test:         w.test,
			NewOptimizer: opt,
			BatchSize:    batch,
			Iters:        nIters,
			Staleness:    3,
			ScaleUpdates: false,
			Compute:      cpuCompute(n),
			Net:          cpuNet(),
			Seed:         seed,
		}
		flCfg := pmlsCfg
		flCfg.Arch = sim.ArchFluentPS
		flCfg.Sync = syncmodel.SSP(3)
		flCfg.Drain = syncmodel.Lazy
		flCfg.UseEPS = true

		pmls, err := sim.Run(pmlsCfg)
		if err != nil {
			return nil, err
		}
		fl, err := sim.Run(flCfg)
		if err != nil {
			return nil, err
		}
		table.AddRow(fmt.Sprint(n), metrics.F(pmls.FinalAcc), metrics.F(fl.FinalAcc))
		if fl.FinalAcc < fluentMin {
			fluentMin = fl.FinalAcc
		}
		if fl.FinalAcc > fluentMax {
			fluentMax = fl.FinalAcc
		}
		if n >= 8 && pmls.FinalAcc > pmlsLargeMax {
			pmlsLargeMax = pmls.FinalAcc
		}
	}
	rep.Tables = append(rep.Tables, table)
	rep.Notef("FluentPS accuracy stays in [%.3f, %.3f] across all N (paper: 75.9–76.7%%)", fluentMin, fluentMax)
	rep.Notef("PMLS-Caffe best accuracy at N≥8: %.3f (paper: 12.7–19%%)", pmlsLargeMax)
	return rep, nil
}

// fig1Sanity is used by tests: the softmax proxy must NOT collapse (it is
// the wrong vehicle for Fig 1), guarding the documented substitution.
func fig1Sanity(seed int64) mlmodel.Model {
	w := alexNetC10(seed)
	return w.model
}
