package lint

import (
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The fixture loader needs the module's go list metadata (fixture imports
// of module packages resolve from source, stdlib from export data); one
// loader serves every golden subtest.
var (
	fixtureOnce sync.Once
	fixtureLd   *Loader
	fixtureErr  error
)

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureLd, fixtureErr = NewLoader("../..", []string{"./..."}, false)
	})
	if fixtureErr != nil {
		t.Fatalf("build fixture loader: %v", fixtureErr)
	}
	return fixtureLd
}

// wantSpec is one expectation parsed from a fixture's // want comment:
//
//	code() // want "regexp matching the finding message"
//	code() // want:warn "regexp" (expects SeverityWarn instead of fail)
//
// The regexp is taken verbatim between the first and last double quote,
// so finding messages containing quoted identifiers need no escaping.
type wantSpec struct {
	file    string
	line    int
	re      *regexp.Regexp
	sev     Severity
	raw     string
	matched bool
}

var wantCommentRE = regexp.MustCompile(`^want(:warn)?\s+"(.*)"$`)

func collectWants(t *testing.T, pkg *Package) []*wantSpec {
	t.Helper()
	var wants []*wantSpec
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				m := wantCommentRE.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[2])
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", pkg.Fset.Position(c.Pos()), m[2], err)
				}
				sev := SeverityFail
				if m[1] == ":warn" {
					sev = SeverityWarn
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, &wantSpec{
					file: baseName(pos.Filename),
					line: pos.Line,
					re:   re,
					sev:  sev,
					raw:  m[2],
				})
			}
		}
	}
	return wants
}

// TestAnalyzerGoldenFixtures runs each analyzer over its fixture package
// under testdata/<analyzer>/ and requires an exact match between the
// findings and the // want comments: every finding must be wanted (the
// unannotated clean idioms are false-positive regressions) and every
// want must fire.
func TestAnalyzerGoldenFixtures(t *testing.T) {
	for _, a := range Analyzers() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			pkg, err := fixtureLoader(t).LoadDir(filepath.Join("testdata", a.Name))
			if err != nil {
				t.Fatalf("load fixture: %v", err)
			}
			prog := BuildProgram([]*Package{pkg})
			prog.PrecomputeSummaries()
			var findings []Finding
			pass := &Pass{Pkg: pkg, Prog: prog, report: func(f Finding) { findings = append(findings, f) }}
			a.Run(pass)
			sortFindings(findings)
			wants := collectWants(t, pkg)
			if len(wants) == 0 {
				t.Fatalf("fixture %s has no want comments", pkg.Path)
			}
			for _, f := range findings {
				matched := false
				for _, w := range wants {
					if w.matched || w.file != baseName(f.Pos.Filename) || w.line != f.Pos.Line {
						continue
					}
					if !w.re.MatchString(f.Message) || w.sev != f.Severity {
						continue
					}
					w.matched = true
					matched = true
					break
				}
				if !matched {
					t.Errorf("unexpected finding at %s:%d [%s] %s",
						baseName(f.Pos.Filename), f.Pos.Line, f.Severity, f.Message)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("want at %s:%d did not fire: %s %q", w.file, w.line, w.sev, w.raw)
				}
			}
		})
	}
}

// TestSuppressionMachinery drives the //lint:ignore pipeline through
// RunPackages on the suppress fixture: a used directive silences its
// finding; reason-less and unused directives both fail.
func TestSuppressionMachinery(t *testing.T) {
	pkg, err := fixtureLoader(t).LoadDir(filepath.Join("testdata", "suppress"))
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	res := RunPackages([]*Package{pkg}, Analyzers())

	if len(res.Suppressions) != 3 {
		t.Fatalf("parsed %d suppressions, want 3", len(res.Suppressions))
	}
	var suppressed, missingReason, unused bool
	for _, f := range res.Findings {
		switch {
		case f.Analyzer == "poolcheck" && f.Suppressed:
			if f.SuppressReason != "fixture exercises the suppression path" {
				t.Errorf("suppressed finding carries reason %q", f.SuppressReason)
			}
			suppressed = true
		case f.Analyzer == "poolcheck":
			t.Errorf("unsuppressed poolcheck finding leaked through: %s", f.Message)
		case f.Analyzer == "fluentvet" && strings.Contains(f.Message, "needs a reason"):
			if f.Severity != SeverityFail {
				t.Errorf("reason-less directive severity = %s, want fail", f.Severity)
			}
			missingReason = true
		case f.Analyzer == "fluentvet" && strings.Contains(f.Message, "matches no finding"):
			if f.Severity != SeverityFail {
				t.Errorf("unused directive severity = %s, want fail", f.Severity)
			}
			unused = true
		}
	}
	if !suppressed || !missingReason || !unused {
		t.Fatalf("missing expected findings: suppressed=%v missingReason=%v unused=%v (have %+v)",
			suppressed, missingReason, unused, res.Findings)
	}
	if !res.Failed() {
		t.Error("a reason-less directive must fail the run")
	}
}
