// Epoch-based immutable parameter snapshots — the RCU read tier of the
// shard.
//
// A Snapshot is a frozen view of the shard at one V_train cut: every
// segment observed atomically at the same moment, published by a single
// atomic pointer swap, and never mutated afterwards. Read-only pulls
// (MsgPullRO) are served from the current snapshot without touching any
// stripe lock, so a fan-out of read-mostly clients costs the apply path
// nothing.
//
// Storage is copy-on-write at stripe granularity: each stripe carries a
// dirty flag set (under the stripe lock) by every mutator, and
// PublishSnapshot re-materializes only the stripes dirtied since the
// last publish, sharing the frozen maps of clean stripes with the
// previous snapshot. Publish cost therefore scales with the write rate
// between publishes, not with model size.
//
// The full-shard payload (the concatenation of all segments in key
// order — what a whole-model pull response carries) is materialized
// lazily by the first reader that needs it and cached on the snapshot,
// so the publish path stays cheap and every subsequent full pull is a
// zero-copy alias of the cached slice.
//
// Concurrency contract: PublishSnapshot has the same quiescence
// requirement as GatherShard (no concurrent appliers — the server
// publishes from its apply goroutine at wave barriers). ROSnapshot and
// every Snapshot method are safe from any goroutine at any time.
package kvstore

import (
	"sync"

	"github.com/fluentps/fluentps/internal/keyrange"
)

// Snapshot is one immutable epoch of the shard. All fields and all
// reachable slices are frozen at publish time; readers may alias them
// freely (including across the wire on in-process transports).
type Snapshot struct {
	// Epoch numbers publishes monotonically from 1. The wire carries its
	// low 32 bits (Message.View) as the staleness stamp; epochs within
	// one server lifetime do not wrap.
	Epoch uint64
	// VTrain is the shard's training clock at the cut — every segment in
	// the snapshot reflects exactly the waves applied up to this tick.
	VTrain int

	layout  *keyrange.Layout
	keys    []keyrange.Key
	stripes []map[keyrange.Key][]float64
	shift   uint

	flatOnce sync.Once
	flat     []float64
}

// Keys returns the snapshot's owned keys in ascending order. The slice
// is frozen; callers must not mutate it.
func (sn *Snapshot) Keys() []keyrange.Key { return sn.keys }

// Dim returns the total number of scalars in the snapshot.
func (sn *Snapshot) Dim() int {
	d := 0
	for _, k := range sn.keys {
		d += sn.layout.KeySize(k)
	}
	return d
}

// Get returns key k's frozen segment. The slice is immutable; callers
// may alias it but must not write through it.
func (sn *Snapshot) Get(k keyrange.Key) ([]float64, bool) {
	seg, ok := sn.stripes[int(stripeHash(k)>>sn.shift)][k]
	return seg, ok
}

// Gather appends the snapshot's segments for keys (in the given order)
// to dst — the snapshot-side counterpart of Shard.GatherShard, callable
// lock-free from any goroutine.
func (sn *Snapshot) Gather(dst []float64, keys []keyrange.Key) ([]float64, error) {
	for _, k := range keys {
		seg, ok := sn.Get(k)
		if !ok {
			return nil, unknownKey("snapshot-gather", k)
		}
		dst = append(dst, seg...)
	}
	return dst, nil
}

// Flat returns the full-shard payload: every segment concatenated in
// key order. It is materialized once per snapshot by the first caller
// (off the apply path) and shared by all subsequent ones; the returned
// slice is immutable.
func (sn *Snapshot) Flat() []float64 {
	sn.flatOnce.Do(func() {
		flat := make([]float64, 0, sn.Dim())
		for _, k := range sn.keys {
			seg, _ := sn.Get(k)
			flat = append(flat, seg...)
		}
		sn.flat = flat
	})
	return sn.flat
}

// ROSnapshot returns the current published snapshot, or nil if none has
// been published yet. Lock-free; safe from any goroutine.
func (s *Shard) ROSnapshot() *Snapshot { return s.snap.Load() }

// PublishSnapshot freezes the shard's current state as the next epoch
// and installs it with one atomic pointer swap. Only stripes dirtied
// since the previous publish are re-materialized; clean stripes share
// the previous snapshot's frozen maps. Requires quiescence (no
// concurrent appliers), like GatherShard.
func (s *Shard) PublishSnapshot(vtrain int) *Snapshot {
	prev := s.snap.Load()
	sn := &Snapshot{
		VTrain:  vtrain,
		layout:  s.layout,
		keys:    append([]keyrange.Key(nil), s.keys...),
		stripes: make([]map[keyrange.Key][]float64, len(s.stripes)),
		shift:   s.shift,
	}
	if prev == nil {
		sn.Epoch = 1
	} else {
		sn.Epoch = prev.Epoch + 1
	}
	for i := range s.stripes {
		sp := &s.stripes[i]
		if prev != nil && !sp.dirty {
			sn.stripes[i] = prev.stripes[i]
			continue
		}
		frozen := make(map[keyrange.Key][]float64, len(sp.data))
		for k, seg := range sp.data {
			frozen[k] = append([]float64(nil), seg...)
		}
		sn.stripes[i] = frozen
		sp.dirty = false
	}
	s.snap.Store(sn)
	return sn
}
