package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"text/tabwriter"
)

// Analyzers returns fluentvet's full analyzer suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		PoolCheck(),
		LockOrder(),
		CtxCheck(),
		TelCheck(),
		AtomicCheck(),
		CodecCheck(),
		HandlerCheck(),
		FenceCheck(),
		LeakCheck(),
		SegCheck(),
	}
}

// Result is one fluentvet run over a set of packages.
type Result struct {
	// Findings holds every diagnostic (suppressed included), sorted by
	// position.
	Findings []Finding `json:"findings"`
	// Suppressions is the parsed //lint:ignore inventory.
	Suppressions []*Suppression `json:"suppressions"`
	// Packages counts the analysis units inspected.
	Packages int `json:"packages"`
}

// Failed reports whether the run must exit non-zero: any unsuppressed,
// unbaselined finding with SeverityFail.
func (r *Result) Failed() bool {
	for _, f := range r.Findings {
		if f.Severity == SeverityFail && !f.Suppressed && !f.Baselined {
			return true
		}
	}
	return false
}

// counts tallies findings by disposition.
func (r *Result) counts() (fail, warn, suppressed, baselined int) {
	for _, f := range r.Findings {
		switch {
		case f.Suppressed:
			suppressed++
		case f.Baselined:
			baselined++
		case f.Severity == SeverityFail:
			fail++
		default:
			warn++
		}
	}
	return
}

// RunPackages applies the analyzers to each package, resolves
// suppressions, and aggregates findings. The whole-program index (call
// graph + function summaries) is built once up front — with every
// summary forced, so the per-package phase is read-only — and the
// packages are then analyzed in parallel, one goroutine per unit up to
// GOMAXPROCS. Output order stays deterministic: findings land in
// per-package slots and are sorted at the end regardless of completion
// order.
func RunPackages(pkgs []*Package, analyzers []*Analyzer) *Result {
	res := &Result{Packages: len(pkgs)}
	prog := BuildProgram(pkgs)
	prog.PrecomputeSummaries()

	perPkg := make([][]Finding, len(pkgs))
	perSup := make([][]*Suppression, len(pkgs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, pkg := range pkgs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, pkg *Package) {
			defer func() { <-sem; wg.Done() }()
			var findings []Finding
			pass := &Pass{Pkg: pkg, Prog: prog, report: func(f Finding) { findings = append(findings, f) }}
			for _, a := range analyzers {
				a.Run(pass)
			}
			sups := collectSuppressions(pkg)
			findings = applySuppressions(findings, sups)
			findings = append(findings, directiveFindings(sups)...)
			perPkg[i] = findings
			perSup[i] = sups
		}(i, pkg)
	}
	wg.Wait()
	for i := range pkgs {
		res.Findings = append(res.Findings, perPkg[i]...)
		res.Suppressions = append(res.Suppressions, perSup[i]...)
	}
	sortFindings(res.Findings)
	sort.Slice(res.Suppressions, func(i, j int) bool {
		a, b := res.Suppressions[i].Pos, res.Suppressions[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return res
}

// Run loads the packages matching patterns (working directory dir) and
// applies the full analyzer suite.
func Run(dir string, patterns []string, includeTests bool) (*Result, error) {
	l, err := NewLoader(dir, patterns, includeTests)
	if err != nil {
		return nil, err
	}
	pkgs, err := l.Load()
	if err != nil {
		return nil, err
	}
	return RunPackages(pkgs, Analyzers()), nil
}

// WriteText renders the human-readable report: findings, then the
// suppression summary table, then one tally line.
func (r *Result) WriteText(w io.Writer) {
	for _, f := range r.Findings {
		if f.Suppressed || f.Baselined {
			continue
		}
		fmt.Fprintf(w, "%s: [%s/%s] %s\n", f.Pos, f.Analyzer, f.Severity, f.Message)
	}
	if len(r.Suppressions) > 0 {
		fmt.Fprintf(w, "\nsuppressions (%d):\n", len(r.Suppressions))
		tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
		fmt.Fprintln(tw, "  ANALYZER\tLOCATION\tSTATE\tREASON")
		for _, s := range r.Suppressions {
			state := "used"
			if !s.Used {
				state = "UNUSED"
			}
			reason := s.Reason
			if reason == "" {
				reason = "(missing)"
				state = "INVALID"
			}
			fmt.Fprintf(tw, "  %s\t%s:%d\t%s\t%s\n", s.Analyzer, s.Pos.Filename, s.Pos.Line, state, reason)
		}
		tw.Flush()
	}
	fail, warn, suppressed, baselined := r.counts()
	fmt.Fprintf(w, "\nfluentvet: %d package(s): %d failure(s), %d warning(s), %d suppressed, %d baselined\n",
		r.Packages, fail, warn, suppressed, baselined)
}

// WriteJSON renders the machine-readable report.
func (r *Result) WriteJSON(w io.Writer) error {
	for i := range r.Findings {
		r.Findings[i].SeverityLabel = r.Findings[i].Severity.String()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
