package keyrange

import (
	"testing"
	"testing/quick"
)

func TestEPSLayoutEvenRekey(t *testing.T) {
	l, err := EPSLayout(1000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumKeys() != 8 || l.TotalDim() != 1000 {
		t.Fatalf("layout %d keys / %d dims", l.NumKeys(), l.TotalDim())
	}
	for k := 0; k < 8; k++ {
		if l.KeySize(Key(k)) != 125 {
			t.Errorf("key %d size %d, want 125", k, l.KeySize(Key(k)))
		}
	}
}

func TestEPSLayoutClampsParts(t *testing.T) {
	l, err := EPSLayout(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumKeys() != 3 {
		t.Errorf("parts not clamped: %d keys", l.NumKeys())
	}
}

func TestEPSLayoutValidation(t *testing.T) {
	if _, err := EPSLayout(0, 4); err == nil {
		t.Error("zero dims accepted")
	}
	if _, err := EPSLayout(10, 0); err == nil {
		t.Error("zero parts accepted")
	}
}

// Property: re-keying plus LPT assignment yields near-perfect balance —
// the full EPS pipeline of the paper.
func TestEPSRekeyPlusAssignIsBalanced(t *testing.T) {
	f := func(dimRaw uint16, serversRaw uint8) bool {
		dim := int(dimRaw)%100000 + 100
		servers := int(serversRaw)%16 + 1
		layout, err := EPSLayout(dim, 4*servers)
		if err != nil {
			return false
		}
		assign, err := EPS(layout, servers)
		if err != nil {
			return false
		}
		// With 4 near-equal keys per server, imbalance stays tiny.
		return assign.Imbalance(layout) < 1.1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEPSLayoutOffsetsContiguous(t *testing.T) {
	l, err := EPSLayout(103, 10)
	if err != nil {
		t.Fatal(err)
	}
	off := 0
	for k := 0; k < l.NumKeys(); k++ {
		if l.KeyOffset(Key(k)) != off {
			t.Fatalf("key %d offset %d, want %d", k, l.KeyOffset(Key(k)), off)
		}
		off += l.KeySize(Key(k))
	}
	if off != 103 {
		t.Fatalf("keys cover %d of 103", off)
	}
}
