package wire

import (
	"math"
	"testing"
)

func TestReadLenValid(t *testing.T) {
	vals := []float64{3, 10, 20, 30, 99}
	n, rest, ok := ReadLen(vals, 1)
	if !ok || n != 3 {
		t.Fatalf("ReadLen = %d, %v; want 3, ok", n, ok)
	}
	if len(rest) != 4 || rest[0] != 10 {
		t.Fatalf("rest = %v; want the stream after the count word", rest)
	}
}

func TestReadLenBoundary(t *testing.T) {
	// Exactly n*per words remaining: the largest valid count.
	n, _, ok := ReadLen([]float64{2, 1, 2, 3, 4}, 2)
	if !ok || n != 2 {
		t.Fatalf("boundary count rejected: n=%d ok=%v", n, ok)
	}
	// One word short: must reject.
	if _, _, ok := ReadLen([]float64{2, 1, 2, 3}, 2); ok {
		t.Fatal("accepted a count one word past the buffer")
	}
}

func TestReadLenHostile(t *testing.T) {
	cases := []struct {
		name string
		vals []float64
		per  int
	}{
		{"empty", nil, 1},
		{"negative", []float64{-1, 0}, 1},
		{"fractional", []float64{1.5, 0, 0}, 1},
		{"nan", []float64{math.NaN(), 0}, 1},
		{"overflowing product", []float64{float64(1 << 60), 0, 0}, 2},
		{"bad per", []float64{1, 0}, 0},
	}
	for _, c := range cases {
		if _, _, ok := ReadLen(c.vals, c.per); ok {
			t.Errorf("%s: ReadLen accepted %v (per=%d)", c.name, c.vals, c.per)
		}
	}
}
