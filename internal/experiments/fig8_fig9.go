package experiments

import (
	"fmt"

	"github.com/fluentps/fluentps/internal/metrics"
	"github.com/fluentps/fluentps/internal/sim"
	"github.com/fluentps/fluentps/internal/syncmodel"
)

func init() {
	register(&Experiment{
		ID:    "fig8",
		Title: "Fig 8: accuracy vs time — soft barrier vs lazy execution (ResNet-56, 32 workers, SSP s=2)",
		Paper: "Lazy execution is ~1.21× faster to finish and holds higher mid-training accuracy because released pulls return fresh parameters.",
		Run:   runFig8,
	})
	register(&Experiment{
		ID:    "fig9",
		Title: "Fig 9: DPRs per 100 iterations — PSSP(s=3,c) vs regret-equivalent SSP(s′), soft barrier and lazy execution",
		Paper: "PSSP cuts up to 97.1% of DPRs and 28.5% of time vs the regret-equivalent SSP under the soft barrier, and still ~70% under lazy execution.",
		Run:   runFig9,
	})
}

func runFig8(opts Options) (*Report, error) {
	w := resNet56C10(opts.Seed)
	workers := 32
	nIters := iters(opts, 400, 60)
	if opts.Quick {
		workers = 8
	}
	w.lr = 0.05 // the regime where stale returns visibly cost accuracy
	compute := gpuCompute(workers)
	// Fig 8 targets the straggler regime where DPRs are frequent and the
	// choice of what a released pull returns (fresh vs stale) matters.
	compute.StraggleProb = 0.12
	compute.StraggleFactor = 5
	base := sim.Config{
		Arch:         sim.ArchFluentPS,
		Workers:      workers,
		Servers:      8,
		Model:        w.model,
		Train:        w.train,
		Test:         w.test,
		Sync:         syncmodel.SSP(2),
		UseEPS:       true,
		NewOptimizer: w.momentum(),
		BatchSize:    realBatch(workers),
		Iters:        nIters,
		Compute:      compute,
		Net:          gpuNet(),
		EvalEvery:    nIters / 16,
		Seed:         opts.Seed,
	}
	soft := base
	soft.Drain = syncmodel.SoftBarrier
	lazy := base
	lazy.Drain = syncmodel.Lazy

	rs, err := sim.Run(soft)
	if err != nil {
		return nil, err
	}
	rl, err := sim.Run(lazy)
	if err != nil {
		return nil, err
	}

	rep := &Report{}
	table := &metrics.Table{
		Title:   "Fig 8 — accuracy vs time, SSP s=2 (sim seconds)",
		Headers: []string{"time", "soft-barrier acc", "lazy acc"},
	}
	softSeries := &metrics.Series{Name: "soft-barrier"}
	lazySeries := &metrics.Series{Name: "lazy"}
	for _, p := range rs.History {
		softSeries.Add(p.Time, p.Acc)
	}
	for _, p := range rl.History {
		lazySeries.Add(p.Time, p.Acc)
	}
	// Sample both curves at the soft-barrier eval instants.
	for _, p := range rs.History {
		table.AddRow(metrics.F(p.Time), metrics.F(p.Acc), metrics.F(lazySeries.YAt(p.Time)))
	}
	rep.Tables = append(rep.Tables, table)
	rep.Series = append(rep.Series, softSeries, lazySeries)
	// The paper's 1.21× is time-to-accuracy. With a pure transfer-physics
	// model both drains are rate-limited by the same stragglers, so wall
	// times come out comparable; lazy's edge shows as higher accuracy at
	// equal time and far fewer synchronization events (see EXPERIMENTS.md
	// for the deviation discussion).
	target := 0.97 * rs.FinalAcc
	tSoft := timeToAcc(rs.History, target)
	tLazy := timeToAcc(rl.History, target)
	if tSoft > 0 && tLazy > 0 {
		rep.Notef("time to %.3f accuracy: lazy %.1fs vs soft %.1fs — %.2fx (paper: 1.21x)",
			target, tLazy, tSoft, tSoft/tLazy)
	}
	rep.Notef("final accuracy lazy %.3f vs soft %.3f", rl.FinalAcc, rs.FinalAcc)
	rep.Notef("DPRs: lazy %d vs soft %d", rl.DPRs, rs.DPRs)
	return rep, nil
}

// timeToAcc returns the first recorded time the accuracy reached target,
// or -1 if it never did.
func timeToAcc(history []sim.TimePoint, target float64) float64 {
	for _, p := range history {
		if p.Acc >= target {
			return p.Time
		}
	}
	return -1
}

// fig9Pairs are the paper's regret-equivalent pairs: PSSP(s=3,c) matches
// SSP(s′ = s + 1/c − 1).
var fig9Pairs = []struct {
	label string
	c     float64
	sPrm  int
}{
	{"A/B", 1.0 / 2, 4},
	{"C/D", 1.0 / 3, 5},
	{"E/F", 1.0 / 5, 7},
	{"G/H", 1.0 / 10, 12},
}

func runFig9(opts Options) (*Report, error) {
	w := alexNetC10(opts.Seed)
	workers := 64
	nIters := iters(opts, 600, 60)
	if opts.Quick {
		workers = 16
	}
	pairs := fig9Pairs
	if opts.Quick {
		pairs = fig9Pairs[:2]
	}

	run := func(model syncmodel.Model, drain syncmodel.DrainPolicy) (*sim.Result, error) {
		cfg := sim.Config{
			Arch:         sim.ArchFluentPS,
			Workers:      workers,
			Servers:      1,
			Model:        w.model,
			Train:        w.train,
			Test:         w.test,
			Sync:         model,
			Drain:        drain,
			UseEPS:       true,
			NewOptimizer: w.sgd(),
			BatchSize:    realBatch(workers),
			Iters:        nIters,
			Compute:      cpuCompute(workers),
			Net:          cpuNet(),
			Seed:         opts.Seed,
		}
		return sim.Run(cfg)
	}

	rep := &Report{}
	table := &metrics.Table{
		Title:   "Fig 9 — DPRs per 100 iterations and total time (regret-equivalent pairs)",
		Headers: []string{"pair", "drain", "PSSP dprs/100", "SSP dprs/100", "dpr-cut", "PSSP time", "SSP time", "time-cut"},
	}
	var bestDPRCut, bestTimeCut float64
	for _, pair := range pairs {
		for _, drain := range []syncmodel.DrainPolicy{syncmodel.SoftBarrier, syncmodel.Lazy} {
			pssp, err := run(syncmodel.PSSPConst(3, pair.c), drain)
			if err != nil {
				return nil, err
			}
			ssp, err := run(syncmodel.SSP(pair.sPrm), drain)
			if err != nil {
				return nil, err
			}
			dprCut, timeCut := 0.0, 0.0
			if ssp.DPRs > 0 {
				dprCut = 1 - float64(pssp.DPRs)/float64(ssp.DPRs)
			}
			if ssp.TotalTime > 0 {
				timeCut = 1 - pssp.TotalTime/ssp.TotalTime
			}
			if drain == syncmodel.SoftBarrier {
				if dprCut > bestDPRCut {
					bestDPRCut = dprCut
				}
				if timeCut > bestTimeCut {
					bestTimeCut = timeCut
				}
			}
			table.AddRow(pair.label, drain.String(),
				fmt.Sprintf("%.1f", pssp.DPRsPer100Iters(nIters)),
				fmt.Sprintf("%.1f", ssp.DPRsPer100Iters(nIters)),
				metrics.Pct(dprCut),
				metrics.F(pssp.TotalTime), metrics.F(ssp.TotalTime),
				metrics.Pct(timeCut))
		}
	}
	rep.Tables = append(rep.Tables, table)
	rep.Notef("best DPR reduction under soft barrier: %s (paper: up to 97.1%%)", metrics.Pct(bestDPRCut))
	rep.Notef("best time reduction under soft barrier: %s (paper: up to 28.5%%)", metrics.Pct(bestTimeCut))

	// Under lazy execution regret-equivalent pairs genuinely produce
	// equivalent DPR counts (that is what Theorem 1's equivalence means
	// operationally), so the lazy-side saving the paper quotes is the
	// equal-s comparison of Table IV: PSSP(s,c) vs SSP at the same s.
	sspSameS, err := run(syncmodel.SSP(3), syncmodel.Lazy)
	if err != nil {
		return nil, err
	}
	psspSameS, err := run(syncmodel.PSSPConst(3, fig9Pairs[0].c), syncmodel.Lazy)
	if err != nil {
		return nil, err
	}
	if sspSameS.DPRs > 0 {
		rep.Notef("lazy, equal s=3: PSSP(c=1/2) cuts %s of SSP's DPRs (paper Table IV lazy rows: 25–75%%)",
			metrics.Pct(1-float64(psspSameS.DPRs)/float64(sspSameS.DPRs)))
	}
	return rep, nil
}
