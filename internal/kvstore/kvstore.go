// Package kvstore holds parameter state for servers and workers.
//
// A Shard is one server's slice of the global model: the segments of the
// flat parameter vector belonging to the keys assigned to that server, with
// per-key update counters. Internally a shard is divided into K
// independently locked sub-stripes (keyed by a hash of the key), so a
// server's apply workers can update disjoint stripes concurrently while
// hot keys in the same stripe serialize on one short lock. Single-owner
// callers (the simulator, pslite) construct with NewShard (one stripe) and
// never notice the locks.
//
// Concurrency contract:
//
//   - ApplyGrad, ApplyBatch, Set, and Updates lock the key's stripe and
//     may be called concurrently from any number of goroutines.
//   - Structural and bulk operations — AddKey, RemoveKey, Keys, Segment,
//     ReadInto, GatherShard, Save, Dim — require quiescence: no concurrent
//     appliers. The server guarantees this by draining its apply workers
//     (a completion-channel barrier) before gathering, checkpointing, or
//     rebalancing.
//
// Gather and Scatter convert between a worker's flat model vector and the
// concatenated per-key payloads that travel in push/pull messages.
package kvstore

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"github.com/fluentps/fluentps/internal/keyrange"
	"github.com/fluentps/fluentps/internal/mathx"
)

// MaxStripes caps the stripe count; beyond this the per-stripe maps stop
// paying for themselves.
const MaxStripes = 1024

// Shard stores the parameter segments for one server's keys, partitioned
// into independently locked stripes.
type Shard struct {
	layout *keyrange.Layout
	keys   []keyrange.Key

	stripes []shardStripe
	// shift maps a key hash to its stripe: stripe = hash(k) >> shift.
	// len(stripes) is always a power of two, so shift = 32 - log2(K); the
	// top hash bits pick the stripe (a one-stripe shard shifts by 32,
	// which Go defines as zero).
	shift uint

	// snap is the current published read-only snapshot (see snapshot.go);
	// nil until the first PublishSnapshot.
	snap atomic.Pointer[Snapshot]
}

// shardStripe is one lock domain: a subset of the shard's keys with their
// segments and update counters.
type shardStripe struct {
	mu      sync.Mutex
	data    map[keyrange.Key][]float64
	updates map[keyrange.Key]uint64
	// dirty marks the stripe as mutated since the last PublishSnapshot;
	// set under mu by every mutator, read and cleared at quiescence by
	// PublishSnapshot so copy-on-write republish touches only this stripe.
	dirty bool
}

// stripeHash spreads dense keys across stripes (Fibonacci hashing: the
// high bits of k * 2^32/φ are well mixed even for sequential keys).
func stripeHash(k keyrange.Key) uint32 { return uint32(k) * 0x9E3779B1 }

// normStripes rounds n up to a power of two in [1, MaxStripes].
func normStripes(n int) int {
	if n <= 1 {
		return 1
	}
	if n > MaxStripes {
		n = MaxStripes
	}
	return 1 << bits.Len(uint(n-1))
}

// NewShard creates a single-stripe shard for the given keys — the
// single-owner construction used by the simulator and tests. If init is
// non-nil it is called once per key to fill the segment's initial values
// (e.g. to copy w0); otherwise segments start at zero.
func NewShard(layout *keyrange.Layout, keys []keyrange.Key, init func(k keyrange.Key, seg []float64)) *Shard {
	return NewStripedShard(layout, keys, init, 1)
}

// NewStripedShard creates a shard whose keys are partitioned into
// `stripes` independently locked sub-stripes (rounded up to a power of
// two, clamped to [1, MaxStripes]). Servers size this from their apply
// worker count.
func NewStripedShard(layout *keyrange.Layout, keys []keyrange.Key, init func(k keyrange.Key, seg []float64), stripes int) *Shard {
	s := newEmptyShard(layout, stripes)
	s.keys = append(s.keys, keys...)
	for _, k := range s.keys {
		seg := make([]float64, layout.KeySize(k))
		if init != nil {
			init(k, seg)
		}
		sp := s.stripeFor(k)
		sp.data[k] = seg
	}
	return s
}

func newEmptyShard(layout *keyrange.Layout, stripes int) *Shard {
	n := normStripes(stripes)
	s := &Shard{
		layout:  layout,
		stripes: make([]shardStripe, n),
		shift:   uint(32 - bits.Len(uint(n-1))),
	}
	if n == 1 {
		s.shift = 32
	}
	for i := range s.stripes {
		s.stripes[i].data = make(map[keyrange.Key][]float64)
		s.stripes[i].updates = make(map[keyrange.Key]uint64)
	}
	return s
}

// NumStripes returns the shard's stripe count (a power of two).
func (s *Shard) NumStripes() int { return len(s.stripes) }

// StripeOf returns the stripe index owning key k's lock domain. It is a
// pure hash of k — valid for keys the shard does not (yet) own, which is
// what lets a server partition an incoming push payload without touching
// any stripe lock.
func (s *Shard) StripeOf(k keyrange.Key) int {
	return int(stripeHash(k) >> s.shift)
}

func (s *Shard) stripeFor(k keyrange.Key) *shardStripe {
	return &s.stripes[s.StripeOf(k)]
}

// Keys returns the keys this shard owns (shared slice; do not mutate).
func (s *Shard) Keys() []keyrange.Key { return s.keys }

// Dim returns the total number of scalars stored in the shard.
func (s *Shard) Dim() int {
	d := 0
	for _, k := range s.keys {
		d += s.layout.KeySize(k)
	}
	return d
}

// Has reports whether the shard owns key k.
func (s *Shard) Has(k keyrange.Key) bool {
	_, ok := s.stripeFor(k).data[k]
	return ok
}

// Segment returns the live segment for key k. The caller must not hold the
// returned slice across shard mutations it does not control; use ReadInto
// for a copy.
func (s *Shard) Segment(k keyrange.Key) ([]float64, error) {
	seg, ok := s.stripeFor(k).data[k]
	if !ok {
		return nil, unknownKey("segment", k)
	}
	return seg, nil
}

// ReadInto copies key k's segment into dst and returns the number of
// scalars copied. dst must be at least the key's size.
func (s *Shard) ReadInto(k keyrange.Key, dst []float64) (int, error) {
	seg, ok := s.stripeFor(k).data[k]
	if !ok {
		return 0, unknownKey("read-into", k)
	}
	if len(dst) < len(seg) {
		return 0, &DimError{Op: "read-into", Key: k, Got: len(dst), Want: len(seg)}
	}
	return copy(dst, seg), nil
}

// ApplyGrad performs w_k += scale · grad for key k (Algorithm 1 line 15
// uses scale = 1/N) under the key's stripe lock. grad must have exactly
// the key's size: a mismatch returns a *DimError (wrapping ErrDimMismatch)
// and applies nothing — never a truncated or partial update.
func (s *Shard) ApplyGrad(k keyrange.Key, grad []float64, scale float64) error {
	sp := s.stripeFor(k)
	sp.mu.Lock()
	defer sp.mu.Unlock()
	seg, ok := sp.data[k]
	if !ok {
		return unknownKey("apply-grad", k)
	}
	if len(grad) != len(seg) {
		return &DimError{Op: "apply-grad", Key: k, Got: len(grad), Want: len(seg)}
	}
	mathx.Axpy(scale, grad, seg)
	sp.updates[k]++
	sp.dirty = true
	return nil
}

// BatchItem is one key's coalesced contribution to an ApplyBatch call:
// every gradient in Grads targets Key and is applied fused (one pass over
// the segment, one update-counter bump per gradient).
type BatchItem struct {
	Key   keyrange.Key
	Grads [][]float64
}

// ApplyBatch applies a coalesced gradient batch to stripe `stripe` under a
// single lock acquisition: for every item, seg += scale · Σ item.Grads.
// All items must hash to the given stripe (the caller partitioned them
// with StripeOf). Validation runs before any mutation per item; a
// *DimError or ErrUnknownKey rejects that item whole, leaving earlier
// items applied — the server treats any error as fatal, so partial-batch
// visibility is never observable in practice.
func (s *Shard) ApplyBatch(stripe int, scale float64, items []BatchItem) error {
	sp := &s.stripes[stripe]
	sp.mu.Lock()
	defer sp.mu.Unlock()
	for i := range items {
		it := &items[i]
		seg, ok := sp.data[it.Key]
		if !ok {
			return unknownKey("apply-batch", it.Key)
		}
		for _, g := range it.Grads {
			if len(g) != len(seg) {
				return &DimError{Op: "apply-batch", Key: it.Key, Got: len(g), Want: len(seg)}
			}
		}
		mathx.AxpyBatch(scale, it.Grads, seg)
		sp.updates[it.Key] += uint64(len(it.Grads))
		sp.dirty = true
	}
	return nil
}

// Set overwrites key k's segment (used for rebalance handoff) under the
// key's stripe lock. A length mismatch returns a *DimError and writes
// nothing.
func (s *Shard) Set(k keyrange.Key, vals []float64) error {
	sp := s.stripeFor(k)
	sp.mu.Lock()
	defer sp.mu.Unlock()
	seg, ok := sp.data[k]
	if !ok {
		return unknownKey("set", k)
	}
	if len(vals) != len(seg) {
		return &DimError{Op: "set", Key: k, Got: len(vals), Want: len(seg)}
	}
	copy(seg, vals)
	sp.dirty = true
	return nil
}

// Updates returns how many gradient applications key k has received. Safe
// to call concurrently with appliers (it takes the stripe lock).
func (s *Shard) Updates(k keyrange.Key) uint64 {
	sp := s.stripeFor(k)
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.updates[k]
}

// AddKey takes ownership of key k with the given segment contents (used
// by elastic rebalancing when a segment migrates in). It is an error if
// the shard already owns k or the values have the wrong size. Structural:
// requires quiescence.
func (s *Shard) AddKey(k keyrange.Key, vals []float64) error {
	sp := s.stripeFor(k)
	if _, ok := sp.data[k]; ok {
		return fmt.Errorf("kvstore: shard already owns key %d", k)
	}
	if len(vals) != s.layout.KeySize(k) {
		return &DimError{Op: "add-key", Key: k, Got: len(vals), Want: s.layout.KeySize(k)}
	}
	sp.data[k] = append([]float64(nil), vals...)
	sp.dirty = true
	s.keys = append(s.keys, k)
	sortKeys(s.keys)
	return nil
}

// RemoveKey releases ownership of key k and returns its final segment
// contents (used by elastic rebalancing when a segment migrates out).
// Structural: requires quiescence.
func (s *Shard) RemoveKey(k keyrange.Key) ([]float64, error) {
	sp := s.stripeFor(k)
	seg, ok := sp.data[k]
	if !ok {
		return nil, unknownKey("remove-key", k)
	}
	delete(sp.data, k)
	delete(sp.updates, k)
	sp.dirty = true
	for i, key := range s.keys {
		if key == k {
			s.keys = append(s.keys[:i], s.keys[i+1:]...)
			break
		}
	}
	return seg, nil
}

func sortKeys(keys []keyrange.Key) {
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
}

// GatherInto appends the concatenation of vec's segments for keys to dst
// and returns it; this is the payload layout of push/pull messages.
func GatherInto(dst []float64, layout *keyrange.Layout, vec []float64, keys []keyrange.Key) []float64 {
	for _, k := range keys {
		dst = append(dst, layout.Slice(vec, k)...)
	}
	return dst
}

// Scatter writes a concatenated payload for keys back into vec's segments.
// It returns a *DimError (wrapping ErrDimMismatch) if the payload length
// does not match the keys' total size.
func Scatter(layout *keyrange.Layout, vec []float64, keys []keyrange.Key, vals []float64) error {
	off := 0
	for _, k := range keys {
		// Keys arrive off the wire; an out-of-layout key must be an error,
		// not an index panic.
		if int(k) >= layout.NumKeys() {
			return unknownKey("scatter", k)
		}
		sz := layout.KeySize(k)
		if off+sz > len(vals) {
			return &DimError{Op: "scatter", Payload: true, Got: len(vals), Want: off + sz}
		}
		copy(layout.Slice(vec, k), vals[off:off+sz])
		off += sz
	}
	if off != len(vals) {
		return &DimError{Op: "scatter", Payload: true, Got: len(vals), Want: off}
	}
	return nil
}

// GatherShard appends the shard's segments for keys (in the given order) to
// dst — the server-side counterpart of GatherInto for pull responses.
// Requires quiescence (no concurrent appliers).
func (s *Shard) GatherShard(dst []float64, keys []keyrange.Key) ([]float64, error) {
	for _, k := range keys {
		seg, ok := s.stripeFor(k).data[k]
		if !ok {
			return nil, unknownKey("gather", k)
		}
		dst = append(dst, seg...)
	}
	return dst, nil
}

// ForEachPayload walks a concatenated payload for keys, calling fn once
// per key with that key's sub-slice of vals. It validates exactly like
// ApplyGradPayload — out-of-layout or unowned keys and size mismatches
// return an error before fn sees the offending key — which is what lets
// the server's apply engine partition a push into per-stripe batches and
// report a malformed push identically to the serial path. Requires
// quiescence (ownership is checked without stripe locks).
func (s *Shard) ForEachPayload(keys []keyrange.Key, vals []float64, fn func(k keyrange.Key, grad []float64)) error {
	off := 0
	for _, k := range keys {
		if int(k) >= s.layout.NumKeys() {
			return unknownKey("apply-payload", k)
		}
		if _, ok := s.stripeFor(k).data[k]; !ok {
			return unknownKey("apply-payload", k)
		}
		sz := s.layout.KeySize(k)
		if off+sz > len(vals) {
			return &DimError{Op: "apply-payload", Payload: true, Got: len(vals), Want: off + sz}
		}
		fn(k, vals[off:off+sz])
		off += sz
	}
	if off != len(vals) {
		return &DimError{Op: "apply-payload", Payload: true, Got: len(vals), Want: off}
	}
	return nil
}

// ApplyGradPayload applies a concatenated gradient payload for keys with
// the given scale — the server-side counterpart of Scatter for pushes.
// Size mismatches (per key or whole payload) return a *DimError.
func (s *Shard) ApplyGradPayload(keys []keyrange.Key, vals []float64, scale float64) error {
	off := 0
	for _, k := range keys {
		// Keys arrive off the wire; an out-of-layout key must be an error,
		// not an index panic.
		if int(k) >= s.layout.NumKeys() {
			return unknownKey("apply-payload", k)
		}
		sz := s.layout.KeySize(k)
		if off+sz > len(vals) {
			return &DimError{Op: "apply-payload", Payload: true, Got: len(vals), Want: off + sz}
		}
		if err := s.ApplyGrad(k, vals[off:off+sz], scale); err != nil {
			return err
		}
		off += sz
	}
	if off != len(vals) {
		return &DimError{Op: "apply-payload", Payload: true, Got: len(vals), Want: off}
	}
	return nil
}

// ApplyDelta adds a precomputed delta to key k's segment and advances its
// update counter by n — the backup-side apply of a replicated wave, where
// the primary already coalesced n gradients (pre-scaled) into one delta.
func (s *Shard) ApplyDelta(k keyrange.Key, delta []float64, n uint64) error {
	sp := s.stripeFor(k)
	sp.mu.Lock()
	defer sp.mu.Unlock()
	seg, ok := sp.data[k]
	if !ok {
		return unknownKey("apply-delta", k)
	}
	if len(delta) != len(seg) {
		return &DimError{Op: "apply-delta", Key: k, Got: len(delta), Want: len(seg)}
	}
	mathx.Axpy(1, delta, seg)
	sp.updates[k] += n
	sp.dirty = true
	return nil
}

// SetWithUpdates overwrites key k's segment and its update counter — the
// backup-side apply of a replica snapshot.
func (s *Shard) SetWithUpdates(k keyrange.Key, vals []float64, updates uint64) error {
	sp := s.stripeFor(k)
	sp.mu.Lock()
	defer sp.mu.Unlock()
	seg, ok := sp.data[k]
	if !ok {
		return unknownKey("set-with-updates", k)
	}
	if len(vals) != len(seg) {
		return &DimError{Op: "set-with-updates", Key: k, Got: len(vals), Want: len(seg)}
	}
	copy(seg, vals)
	sp.updates[k] = updates
	sp.dirty = true
	return nil
}
