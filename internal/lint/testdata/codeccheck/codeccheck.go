// Package fixture seeds codeccheck's golden test: pairing, bounds-before-
// allocation, multiplication-free guards, and version symmetry, each with
// a flagged shape and a clean idiom the analyzer must not flag.
package fixture

import (
	"github.com/fluentps/fluentps/internal/wire"
)

// An encoder with no decoder anywhere in the package: the wire format
// cannot round-trip.
func encodeThing(dst []float64, vals []float64) []float64 { // want "encoder encodeThing has no paired decoder"
	dst = append(dst, float64(len(vals)))
	return append(dst, vals...)
}

// The decodeWave bug class: the count sizes an allocation before any
// check against the remaining buffer.
func decodeBad(vals []float64) []float64 {
	if len(vals) == 0 {
		return nil
	}
	n := int(vals[0])
	out := make([]float64, n) // want "wire-read count "n" sizes an allocation size before any bounds check"
	copy(out, vals[1:])
	return out
}

// The overflow-unsafe guard: multiplying a hostile count wraps the
// product past the comparison.
func decodeMul(vals []float64) []float64 {
	if len(vals) == 0 {
		return nil
	}
	n := int(vals[0])
	if len(vals) < 1+2*n { // want "bounds check multiplies wire-read count "n""
		return nil
	}
	return vals[1 : 1+2*n]
}

// Clean: wire.ReadLen validates the count at birth.
func decodeBlessed(vals []float64) []float64 {
	n, rest, ok := wire.ReadLen(vals, 1)
	if !ok {
		return nil
	}
	out := make([]float64, n)
	copy(out, rest[:n])
	return out
}

// checkLen is the hoisted length check: its summary proves it compares
// the count parameter against the buffer.
func checkLen(n int, rest []float64) bool {
	return n >= 0 && n <= len(rest)
}

// Clean: the bounds check lives in a helper, seen through its summary.
func decodeHoisted(vals []float64) []float64 {
	if len(vals) == 0 {
		return nil
	}
	n := int(vals[0])
	rest := vals[1:]
	if !checkLen(n, rest) {
		return nil
	}
	return rest[:n]
}

// Clean: method-form pairing — Blob.Encode pairs with DecodeBlob by
// receiver type name.
type Blob struct{ data []byte }

func (b *Blob) Encode(dst []byte) []byte { return append(dst, b.data...) }

func DecodeBlob(src []byte) *Blob { return &Blob{data: src} }

// Clean: "Encoded" is a longer word, not the codec verb — exempt from
// pairing.
func (b *Blob) EncodedSize() int { return len(b.data) }

// Version-gated frame widths: blobLenV1 is the legacy layout, blobLen
// the current one.
const (
	blobLenV1 = 8
	blobLen   = 12
)

// A decoder that only knows the current width silently rejects every
// pre-upgrade frame.
func decodeOnlyCurrent(src []byte) []byte { // want "decoder decodeOnlyCurrent references blobLen but not its version sibling"
	if len(src) < blobLen {
		return nil
	}
	return src[:blobLen]
}

// An encoder writing the legacy width reintroduces the old format.
func encodeBlobState(dst []byte) []byte { // want "encoder encodeBlobState references legacy constant blobLenV1"
	return append(dst, make([]byte, blobLenV1)...)
}

// Clean: the paired decoder accepts both widths.
func decodeBlobState(src []byte) []byte {
	if len(src) >= blobLen {
		return src[:blobLen]
	}
	if len(src) >= blobLenV1 {
		return src[:blobLenV1]
	}
	return nil
}
