package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// poolcheck enforces the transport message-pool ownership discipline
// (transport/pool.go):
//
//   - a message obtained from transport.NewMessage must reach exactly one
//     of transport.Release / transport.SendOwned on every path (or
//     provably escape to another owner);
//   - a message obtained from Endpoint.Recv or transport.Decode must
//     reach transport.ReleaseReceived (or escape);
//   - no use of a message after it was released or handed to SendOwned;
//   - Release on a received message and ReleaseReceived on a
//     creator-owned message are silent no-ops at runtime — both are
//     almost always a leak spelled politely, so they are findings;
//   - SendRetained keeps ownership: its message must STILL be released.
//
// The tracker is per-function and path-sensitive for release state
// (branches merge: a message counts as released only when every
// fall-through branch released it) but deliberately loses track of
// messages that escape — stored in a struct, captured by a closure, sent
// on a channel, passed to a call it cannot see through — because
// ownership then legitimately belongs to someone else (queues,
// pipelines, fault paths that lean on the GC are all documented owners).
//
// Calls into module functions are seen through the interprocedural
// summaries (summary.go): a helper that only reads its message parameter
// no longer launders ownership (the caller still owes the release), a
// helper that unconditionally releases counts as the release itself, and
// a helper whose first result is always a pooled message registers its
// caller's binding with the right origin. Pointer comparisons (== / !=)
// against a tracked message are exempt from use-after-release: identity
// tests never dereference.

// PoolCheck returns the poolcheck analyzer.
func PoolCheck() *Analyzer {
	return &Analyzer{
		Name: "poolcheck",
		Doc:  "pooled messages reach exactly one release on every path and are never used afterwards",
		Run:  runPoolCheck,
	}
}

func runPoolCheck(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					poolAnalyzeFunc(pass, n.Body)
				}
				return false
			case *ast.FuncLit:
				// Package-level var initializers; lits inside functions are
				// handled by the walker itself.
				poolAnalyzeFunc(pass, n.Body)
				return false
			}
			return true
		})
	}
}

type poolOrigin uint8

const (
	originNew poolOrigin = iota
	originRecv
)

// poolFacts is the path-independent record of one tracked message
// variable: where it came from and whether ANY path consumed it or let
// it escape.
type poolFacts struct {
	origin   poolOrigin
	pos      token.Pos
	name     string
	consumed bool
	escaped  bool
}

// poolRel marks a variable released on the current path.
type poolRel struct {
	by   string
	line int
}

// poolPath is the per-path release state: variables present are released.
type poolPath map[*types.Var]poolRel

func (p poolPath) clone() poolPath {
	c := make(poolPath, len(p))
	for k, v := range p {
		c[k] = v
	}
	return c
}

type poolWalker struct {
	pass  *Pass
	info  *types.Info
	prog  *Program
	vars  map[*types.Var]*poolFacts
	order []*types.Var
}

func poolAnalyzeFunc(pass *Pass, body *ast.BlockStmt) {
	w := &poolWalker{
		pass: pass,
		info: pass.Pkg.Info,
		prog: pass.Prog,
		vars: make(map[*types.Var]*poolFacts),
	}
	w.walkStmts(body.List, make(poolPath))
	for _, v := range w.order {
		f := w.vars[v]
		if f.consumed || f.escaped {
			continue
		}
		var msg string
		if f.origin == originNew {
			msg = "pooled message %q from transport.NewMessage is never released: no path reaches transport.Release or transport.SendOwned"
		} else {
			msg = "received message %q is never released: call transport.ReleaseReceived when done with it"
		}
		if w.pass.Pkg.IsTestPos(f.pos) {
			w.pass.Warnf("poolcheck", f.pos, msg, f.name)
		} else {
			w.pass.Reportf("poolcheck", f.pos, msg, f.name)
		}
	}
}

// trackedIdent resolves e to a tracked variable, or nil.
func (w *poolWalker) trackedIdent(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := w.info.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	if _, tracked := w.vars[v]; !tracked {
		return nil
	}
	return v
}

// useCheck reports a use of v while the current path considers it
// released.
func (w *poolWalker) useCheck(path poolPath, v *types.Var, pos token.Pos) {
	if rel, ok := path[v]; ok {
		w.pass.Reportf("poolcheck", pos,
			"use of message %q after %s released it (line %d)", w.vars[v].name, rel.by, rel.line)
	}
}

// escape marks v as having a new owner; the tracker stops expecting a
// release from this function.
func (w *poolWalker) escape(v *types.Var) { w.vars[v].escaped = true }

// line returns the 1-based source line of pos.
func (w *poolWalker) line(pos token.Pos) int { return w.pass.Pkg.Fset.Position(pos).Line }

// isMessagePtr reports whether t is *transport.Message.
func isMessagePtr(t types.Type) bool {
	path, name := namedTypePath(t)
	if _, ok := t.(*types.Pointer); !ok {
		return false
	}
	return name == "Message" && hasPathSuffix(path, "internal/transport")
}

// originOf classifies call as a message-producing call (the transport
// producers plus any module helper whose summary proves a constant
// origin), returning the origin and true, or false for everything else.
func (w *poolWalker) originOf(call *ast.CallExpr) (poolOrigin, bool) {
	return msgOriginOfCall(w.info, w.prog, call)
}

// register begins tracking the variable bound by ident to a fresh pooled
// message.
func (w *poolWalker) register(path poolPath, ident ast.Expr, origin poolOrigin) {
	id, ok := ast.Unparen(ident).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	var v *types.Var
	if def, ok := w.info.Defs[id].(*types.Var); ok {
		v = def
	} else if use, ok := w.info.Uses[id].(*types.Var); ok {
		v = use
	}
	if v == nil || !isMessagePtr(v.Type()) {
		return
	}
	if _, seen := w.vars[v]; !seen {
		w.order = append(w.order, v)
	}
	w.vars[v] = &poolFacts{origin: origin, pos: id.Pos(), name: id.Name}
	delete(path, v)
}

// releaseCall classifies call as one of the four ownership-transfer
// calls, returning the tracked message argument (nil when the argument
// is not a tracked local).
func (w *poolWalker) releaseCall(call *ast.CallExpr) (kind string, arg ast.Expr) {
	return transportReleaseCall(w.info, call)
}

// summaryOf resolves call to a module function's summary (nil for
// dynamic calls, externals, and anything the program index cannot see)
// plus a display name for diagnostics.
func (w *poolWalker) summaryOf(call *ast.CallExpr) (*FuncSummary, string) {
	pf := w.prog.CalleeFunc(w.info, call)
	if pf == nil {
		return nil, ""
	}
	return w.prog.Summary(pf), pf.Obj.Name()
}

// applyCallEffect applies a callee's summarized effect on the tracked
// message argument at position i. With no summary (or an escape effect)
// ownership conservatively transfers, exactly as the intra-procedural
// tracker assumed for every call.
func (w *poolWalker) applyCallEffect(path poolPath, sum *FuncSummary, calleeName string, i int, v *types.Var, pos token.Pos, deferred bool) {
	eff := EffectEscape
	if sum != nil && i < len(sum.MsgParams) {
		eff = sum.MsgParams[i]
	}
	switch eff {
	case EffectUses:
		// The callee only reads it: ownership — and the release
		// obligation — stay right here.
		w.useCheck(path, v, pos)
	case EffectReleases:
		w.applyRelease(path, "Release", calleeName+" (which releases it)", v, pos, deferred)
	case EffectReleasesReceived:
		w.applyRelease(path, "ReleaseReceived", calleeName+" (which releases it)", v, pos, deferred)
	case EffectSendsOwned:
		w.applyRelease(path, "SendOwned", calleeName+" (which sends it owned)", v, pos, deferred)
	default:
		w.useCheck(path, v, pos)
		w.escape(v)
	}
}

// applyRelease handles Release/ReleaseReceived/SendOwned/SendRetained on
// a tracked variable on the current path. via names what performed the
// transfer in diagnostics — "transport.Release" for direct calls, the
// helper's name when a summary proved the release happens inside a
// callee. deferred releases consume but do not mark the path released
// (they run at function exit).
func (w *poolWalker) applyRelease(path poolPath, kind, via string, v *types.Var, pos token.Pos, deferred bool) {
	f := w.vars[v]
	switch kind {
	case "Release":
		if f.origin == originRecv {
			w.pass.Reportf("poolcheck", pos,
				"%s is a no-op on received message %q; use transport.ReleaseReceived", via, f.name)
			return
		}
	case "ReleaseReceived":
		if f.origin == originNew {
			w.pass.Reportf("poolcheck", pos,
				"%s is a no-op on creator-owned message %q; use transport.Release or transport.SendOwned", via, f.name)
			return
		}
	case "SendOwned":
		if f.origin == originRecv {
			// Forwarding a received pointer: ownership moves downstream.
			w.useCheck(path, v, pos)
			w.escape(v)
			return
		}
	case "SendRetained":
		// Ownership retained: just a use, the release still has to come.
		w.useCheck(path, v, pos)
		return
	}
	if rel, ok := path[v]; ok {
		w.pass.Reportf("poolcheck", pos,
			"message %q released twice: %s here, %s at line %d", f.name, via, rel.by, rel.line)
		return
	}
	f.consumed = true
	if !deferred {
		path[v] = poolRel{by: via, line: w.line(pos)}
	}
}

// scan inspects an expression: registers origin calls in sub-expressions
// is NOT done here (assignments handle binding); it checks uses of
// released messages, applies release calls, and marks escapes.
func (w *poolWalker) scan(path poolPath, n ast.Node) {
	switch n := n.(type) {
	case nil:
	case *ast.Ident:
		if v, ok := w.info.Uses[n].(*types.Var); ok {
			if _, tracked := w.vars[v]; tracked {
				w.useCheck(path, v, n.Pos())
			}
		}
	case *ast.CallExpr:
		if kind, argExpr := w.releaseCall(n); kind != "" {
			if v := w.trackedIdent(argExpr); v != nil {
				w.applyRelease(path, kind, "transport."+kind, v, n.Pos(), false)
				for _, a := range n.Args {
					if a != argExpr {
						w.scan(path, a)
					}
				}
				return
			}
		}
		sum, calleeName := w.summaryOf(n)
		w.scan(path, n.Fun)
		for i, a := range n.Args {
			if v := w.trackedIdent(a); v != nil {
				w.applyCallEffect(path, sum, calleeName, i, v, a.Pos(), false)
				continue
			}
			w.scan(path, a)
		}
	case *ast.SelectorExpr:
		// Field/method access is a use of the base, not an escape.
		w.scan(path, n.X)
	case *ast.FuncLit:
		// The closure may run at any time: everything it captures escapes,
		// and its body is checked as its own function.
		ast.Inspect(n.Body, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if v, ok := w.info.Uses[id].(*types.Var); ok {
					if _, tracked := w.vars[v]; tracked {
						w.escape(v)
					}
				}
			}
			return true
		})
		poolAnalyzeFunc(w.pass, n.Body)
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if v := w.trackedIdent(n.X); v != nil {
				w.useCheck(path, v, n.X.Pos())
				w.escape(v)
				return
			}
		}
		w.scan(path, n.X)
	case *ast.CompositeLit:
		for _, elt := range n.Elts {
			e := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				e = kv.Value
			}
			if v := w.trackedIdent(e); v != nil {
				w.useCheck(path, v, e.Pos())
				w.escape(v)
				continue
			}
			w.scan(path, e)
		}
	case *ast.BinaryExpr:
		if n.Op == token.EQL || n.Op == token.NEQ {
			// Pointer identity never dereferences: comparing a tracked
			// message — even one already released or handed off — is
			// legal (handoff tests assert exactly this).
			if w.trackedIdent(n.X) == nil {
				w.scan(path, n.X)
			}
			if w.trackedIdent(n.Y) == nil {
				w.scan(path, n.Y)
			}
			return
		}
		w.scan(path, n.X)
		w.scan(path, n.Y)
	case *ast.ParenExpr:
		w.scan(path, n.X)
	case *ast.StarExpr:
		w.scan(path, n.X)
	case *ast.IndexExpr:
		w.scan(path, n.X)
		w.scan(path, n.Index)
	case *ast.SliceExpr:
		w.scan(path, n.X)
		w.scan(path, n.Low)
		w.scan(path, n.High)
		w.scan(path, n.Max)
	case *ast.TypeAssertExpr:
		w.scan(path, n.X)
	case *ast.KeyValueExpr:
		w.scan(path, n.Key)
		w.scan(path, n.Value)
	}
}

// walkStmts walks a statement sequence, returning true when every path
// through it terminates (return/branch).
func (w *poolWalker) walkStmts(stmts []ast.Stmt, path poolPath) bool {
	for _, s := range stmts {
		if w.walkStmt(s, path) {
			return true
		}
	}
	return false
}

type poolBranch struct {
	path       poolPath
	terminated bool
}

// mergeBranches replaces path with the intersection of release states
// over all fall-through branches.
func mergeBranches(path poolPath, branches []poolBranch) {
	var live []poolPath
	for _, b := range branches {
		if !b.terminated {
			live = append(live, b.path)
		}
	}
	for k := range path {
		delete(path, k)
	}
	if len(live) == 0 {
		return
	}
	for v, rel := range live[0] {
		inAll := true
		for _, p := range live[1:] {
			if _, ok := p[v]; !ok {
				inAll = false
				break
			}
		}
		if inAll {
			path[v] = rel
		}
	}
}

func (w *poolWalker) walkStmt(s ast.Stmt, path poolPath) bool {
	switch s := s.(type) {
	case nil:
	case *ast.ExprStmt:
		w.scan(path, s.X)
	case *ast.AssignStmt:
		w.walkAssign(path, s.Lhs, s.Rhs)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				lhs := make([]ast.Expr, len(vs.Names))
				for i, n := range vs.Names {
					lhs[i] = n
				}
				w.walkAssign(path, lhs, vs.Values)
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if v := w.trackedIdent(r); v != nil {
				w.useCheck(path, v, r.Pos())
				w.escape(v)
				continue
			}
			w.scan(path, r)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.DeferStmt:
		w.walkAsync(path, s.Call, true)
	case *ast.GoStmt:
		w.walkAsync(path, s.Call, false)
	case *ast.SendStmt:
		w.scan(path, s.Chan)
		if v := w.trackedIdent(s.Value); v != nil {
			w.useCheck(path, v, s.Value.Pos())
			w.escape(v)
		} else {
			w.scan(path, s.Value)
		}
	case *ast.IncDecStmt:
		w.scan(path, s.X)
	case *ast.BlockStmt:
		return w.walkStmts(s.List, path)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, path)
	case *ast.IfStmt:
		w.walkStmt(s.Init, path)
		w.scan(path, s.Cond)
		then := poolBranch{path: path.clone()}
		then.terminated = w.walkStmts(s.Body.List, then.path)
		els := poolBranch{path: path.clone()}
		if s.Else != nil {
			els.terminated = w.walkStmt(s.Else, els.path)
		}
		mergeBranches(path, []poolBranch{then, els})
		return then.terminated && s.Else != nil && els.terminated
	case *ast.SwitchStmt:
		w.walkStmt(s.Init, path)
		w.scan(path, s.Tag)
		w.walkCases(path, s.Body.List, false)
	case *ast.TypeSwitchStmt:
		w.walkStmt(s.Init, path)
		w.walkCases(path, s.Body.List, false)
	case *ast.SelectStmt:
		w.walkCases(path, s.Body.List, true)
	case *ast.ForStmt:
		w.walkStmt(s.Init, path)
		w.scan(path, s.Cond)
		body := path.clone()
		w.walkStmts(s.Body.List, body)
		w.walkStmt(s.Post, body)
	case *ast.RangeStmt:
		w.scan(path, s.X)
		body := path.clone()
		if s.Tok == token.DEFINE && s.Key != nil {
			// Ranging over a channel of messages binds received values.
			if t, ok := w.info.Types[s.X]; ok {
				if ch, ok := t.Type.Underlying().(*types.Chan); ok && isMessagePtr(ch.Elem()) {
					w.register(body, s.Key, originRecv)
				}
			}
		}
		w.walkStmts(s.Body.List, body)
	default:
		// Anything unhandled: scan conservatively for uses.
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.scan(path, e)
				return false
			}
			return true
		})
	}
	return false
}

// walkCases walks switch/select clause bodies as parallel branches. A
// switch without a default keeps an implicit unchanged fall-through
// branch; a select without a default blocks until some clause runs, so
// its clauses cover every path.
func (w *poolWalker) walkCases(path poolPath, clauses []ast.Stmt, isSelect bool) {
	var branches []poolBranch
	hasDefault := false
	for _, c := range clauses {
		b := poolBranch{path: path.clone()}
		switch cc := c.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			for _, e := range cc.List {
				w.scan(path, e)
			}
			b.terminated = w.walkStmts(cc.Body, b.path)
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			} else {
				w.walkStmt(cc.Comm, b.path)
			}
			b.terminated = w.walkStmts(cc.Body, b.path)
		default:
			continue
		}
		branches = append(branches, b)
	}
	if !isSelect && !hasDefault {
		branches = append(branches, poolBranch{path: path.clone()})
	}
	mergeBranches(path, branches)
}

// walkAssign handles registration (m := transport.NewMessage(), resp,
// err := ep.Recv()) and aliasing/field stores.
func (w *poolWalker) walkAssign(path poolPath, lhs, rhs []ast.Expr) {
	registered := make(map[int]bool)
	if len(rhs) == 1 {
		if call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr); ok {
			if origin, ok := w.originOf(call); ok && len(lhs) >= 1 {
				for _, a := range call.Args {
					w.scan(path, a)
				}
				w.register(path, lhs[0], origin)
				registered[0] = true
			}
		}
	}
	if len(registered) == 0 {
		for i, r := range rhs {
			if call, ok := ast.Unparen(r).(*ast.CallExpr); ok && len(rhs) == len(lhs) {
				if origin, ok := w.originOf(call); ok {
					for _, a := range call.Args {
						w.scan(path, a)
					}
					w.register(path, lhs[i], origin)
					registered[i] = true
					continue
				}
			}
			if v := w.trackedIdent(r); v != nil {
				// Aliased into another variable or stored somewhere.
				w.useCheck(path, v, r.Pos())
				w.escape(v)
				continue
			}
			w.scan(path, r)
		}
	}
	for i, l := range lhs {
		if registered[i] {
			continue
		}
		if id, ok := ast.Unparen(l).(*ast.Ident); ok {
			// Rebinding a tracked variable to a non-message value: the
			// path state for the old value no longer applies.
			if v, ok := w.info.Uses[id].(*types.Var); ok {
				if _, tracked := w.vars[v]; tracked {
					delete(path, v)
				}
			}
			continue
		}
		w.scan(path, l)
	}
}

// walkAsync handles defer/go calls: deferred releases (direct or through
// a summarized helper) consume their message; a goroutine's arguments
// always hand ownership away — the goroutine runs on its own schedule,
// so even a read-only callee could race a release here.
func (w *poolWalker) walkAsync(path poolPath, call *ast.CallExpr, deferred bool) {
	if deferred {
		if kind, argExpr := w.releaseCall(call); kind != "" {
			if v := w.trackedIdent(argExpr); v != nil {
				w.applyRelease(path, kind, "transport."+kind, v, call.Pos(), true)
				return
			}
		}
	}
	var sum *FuncSummary
	var calleeName string
	if deferred {
		sum, calleeName = w.summaryOf(call)
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		w.scan(path, lit)
	} else {
		w.scan(path, call.Fun)
	}
	for i, a := range call.Args {
		if v := w.trackedIdent(a); v != nil {
			if deferred {
				w.applyCallEffect(path, sum, calleeName, i, v, a.Pos(), true)
			} else {
				w.useCheck(path, v, a.Pos())
				w.escape(v)
			}
			continue
		}
		w.scan(path, a)
	}
}
