package syncmodel_test

import (
	"fmt"

	"github.com/fluentps/fluentps/internal/syncmodel"
)

// The controller is Algorithm 1: pushes advance V_train when the push
// condition fires, delayed pulls wait in the buffer and drain with fresh
// parameters.
func ExampleController() {
	c := syncmodel.New(2, syncmodel.SSP(1), syncmodel.Lazy, nil)

	// Worker 0 sprints: its first pull passes (lead 0 < s=1)…
	c.OnPush(0, 0)
	fmt.Println("pull@0 ready:", c.OnPull(0, 0, nil))

	// …but its next one blocks (lead 1 ≥ s) and becomes a DPR.
	c.OnPush(0, 1)
	fmt.Println("pull@1 ready:", c.OnPull(0, 1, "w0"))

	// Worker 1 closes rounds 0 and 1; the second advance releases the
	// buffered pull with fully fresh parameters.
	c.OnPush(1, 0)
	_, released := c.OnPush(1, 1)
	fmt.Println("released:", released[0].Token, "at V_train", c.VTrain())
	// Output:
	// pull@0 ready: true
	// pull@1 ready: false
	// released: w0 at V_train 2
}

// Every Table III model is a pull condition plus a push condition.
func ExampleModel() {
	for _, m := range []syncmodel.Model{
		syncmodel.BSP(),
		syncmodel.SSP(3),
		syncmodel.PSSPConst(3, 0.5),
		syncmodel.DropStragglers(4),
	} {
		fmt.Println(m.Name)
	}
	// Output:
	// BSP
	// SSP(s=3)
	// PSSP(s=3,c=0.5)
	// Drop(Nt=4)
}
