// Quickstart: train a classifier on a FluentPS cluster in one process.
//
// This spins up 2 parameter servers and 4 data-parallel workers over the
// in-process transport, trains a softmax model under BSP, and prints the
// final test accuracy — the whole parameter-server data path (sPush/sPull,
// per-shard condition controllers, EPS slicing) in ~30 lines of
// configuration.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/fluentps/fluentps/internal/core"
	"github.com/fluentps/fluentps/internal/dataset"
	"github.com/fluentps/fluentps/internal/mlmodel"
	"github.com/fluentps/fluentps/internal/optimizer"
	"github.com/fluentps/fluentps/internal/syncmodel"
)

func main() {
	train, test := dataset.CIFAR10Like(1)
	model, err := mlmodel.NewSoftmax(train.Classes, train.Dim, nil)
	if err != nil {
		log.Fatal(err)
	}

	res, err := core.Run(core.ClusterConfig{
		Workers:      4,
		Servers:      2,
		Model:        model,
		Train:        train,
		Test:         test,
		Sync:         syncmodel.BSP(),
		Drain:        syncmodel.Lazy,
		UseEPS:       true,
		NewOptimizer: func() optimizer.Optimizer { return &optimizer.SGD{LR: 0.1} },
		BatchSize:    32,
		Iters:        400,
		EvalEvery:    100,
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("accuracy during training (worker 0's view):")
	for _, p := range res.History {
		fmt.Printf("  iter %4d: %.3f\n", p.Iter, p.Acc)
	}
	fmt.Printf("final: loss=%.4f accuracy=%.3f in %v\n", res.FinalLoss, res.FinalAcc, res.Elapsed.Round(1e6))
	for m, st := range res.ServerStats {
		fmt.Printf("server %d: pushes=%d pulls=%d rounds=%d delayed-pulls=%d\n",
			m, st.Pushes, st.Pulls, st.Advances, st.DPRs)
	}
	for n, wt := range res.WorkerTimes {
		fmt.Printf("worker %d: compute=%v sync-wait=%v (%.0f%% waiting)\n",
			n, wt.Compute.Round(1e6), wt.Sync.Round(1e6), 100*wt.SyncShare())
	}
}
