package core

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/fluentps/fluentps/internal/keyrange"
	"github.com/fluentps/fluentps/internal/syncmodel"
	"github.com/fluentps/fluentps/internal/telemetry"
	"github.com/fluentps/fluentps/internal/transport"
)

// Tests for the read-optimized serving tier (roserver.go): RO pulls over
// the server endpoint and over mux streams, epoch bounds, admission
// control, the inline fallback, and pool shutdown hygiene.

func TestROPullServesSnapshots(t *testing.T) {
	reg := telemetry.New()
	layout := keyrange.MustLayout([]int{2, 3})
	assign, err := keyrange.EPS(layout, 1)
	if err != nil {
		t.Fatal(err)
	}
	cnet := transport.NewChanNetwork(64)
	srv, err := NewServer(cnet.Endpoint(transport.Server(0)), ServerConfig{
		Rank: 0, NumWorkers: 1, Layout: layout, Assignment: assign,
		Model: syncmodel.ASP(), Drain: syncmodel.Lazy,
		Init: func(k keyrange.Key, seg []float64) {
			for i := range seg {
				seg[i] = 1
			}
		},
		Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Run()
	t.Cleanup(func() {
		ep := cnet.Endpoint(transport.Worker(99))
		_ = ep.Send(&transport.Message{Type: transport.MsgShutdown, To: transport.Server(0)})
		ep.Close()
	})

	ro := NewROClient(cnet.Endpoint(transport.Worker(7)), 0)
	dst := make([]float64, layout.TotalDim())
	epoch, vtrain, err := ro.Pull(tctx, dst)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 || vtrain != 0 {
		t.Fatalf("boot snapshot epoch %d vtrain %d, want 1/0", epoch, vtrain)
	}
	for i, v := range dst {
		if v != 1 {
			t.Fatalf("boot pull scalar %d = %v, want init value 1", i, v)
		}
	}

	// A push advances V_train; the apply-wave boundary publishes a new
	// epoch, and the synchronous SPull fences the RO pull behind it.
	w, err := NewWorker(cnet.Endpoint(transport.Worker(0)), WorkerConfig{Rank: 0, Layout: layout, Assignment: assign})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.SPush(tctx, 0, []float64{2, 2, 4, 4, 4}); err != nil {
		t.Fatal(err)
	}
	params := make([]float64, layout.TotalDim())
	if err := w.SPull(tctx, 0, params); err != nil {
		t.Fatal(err)
	}

	epoch2, vtrain2, err := ro.Pull(tctx, dst)
	if err != nil {
		t.Fatal(err)
	}
	if epoch2 <= epoch {
		t.Fatalf("epoch did not advance after a push: %d -> %d", epoch, epoch2)
	}
	if vtrain2 < 1 {
		t.Fatalf("snapshot vtrain %d after a push, want >= 1", vtrain2)
	}
	// ASP scales pushes by 1/NumWorkers (=1): init 1 + delta.
	want := []float64{3, 3, 5, 5, 5}
	for i, v := range dst {
		if v != want[i] {
			t.Fatalf("post-push RO pull = %v, want %v", dst, want)
		}
	}
	if ro.Epoch() != epoch2 {
		t.Fatalf("client epoch %d, want %d (monotone bound)", ro.Epoch(), epoch2)
	}

	// Subset pull: just key 1 (3 scalars), via the copying path.
	sub := make([]float64, 3)
	if _, _, err := ro.PullKeys(tctx, []keyrange.Key{1}, sub); err != nil {
		t.Fatal(err)
	}
	if sub[0] != 5 || sub[1] != 5 || sub[2] != 5 {
		t.Fatalf("subset pull = %v, want [5 5 5]", sub)
	}

	// Telemetry and stats surface the read tier.
	if reg.Counter("server.ro_pulls").Value() < 3 {
		t.Fatalf("ro_pulls = %d, want >= 3", reg.Counter("server.ro_pulls").Value())
	}
	if reg.Gauge("server.snapshot_epoch").Value() < 2 {
		t.Fatalf("snapshot_epoch gauge = %d, want >= 2", reg.Gauge("server.snapshot_epoch").Value())
	}
	sep := cnet.Endpoint(transport.Worker(98))
	defer sep.Close()
	st, err := QueryStats(tctx, sep, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.ROPulls < 3 || st.SnapshotEpoch < 2 {
		t.Fatalf("stats ROPulls=%d SnapshotEpoch=%d, want >=3 / >=2", st.ROPulls, st.SnapshotEpoch)
	}
}

// An epoch bound ahead of the published snapshot cannot be served: the
// server answers retry-after, and the client-side loop backs off until
// the ctx expires when no satisfying snapshot will ever appear.
func TestROPullUnsatisfiableEpochBound(t *testing.T) {
	cnet, _, _, _ := testServer(t, syncmodel.ASP(), syncmodel.Lazy, 2)

	ep := cnet.Endpoint(transport.Worker(12))
	defer ep.Close()
	req := &transport.Message{Type: transport.MsgPullRO, To: transport.Server(0), Seq: 9, View: 1 << 20}
	if err := ep.Send(req); err != nil {
		t.Fatal(err)
	}
	resp, err := ep.Recv()
	if err != nil {
		t.Fatal(err)
	}
	defer transport.ReleaseReceived(resp)
	if resp.Type != transport.MsgPullRORetry {
		t.Fatalf("got %s, want pull_ro_retry", resp.Type)
	}
	if resp.Seq != 9 || resp.Progress != DefaultRetryAfterMs {
		t.Fatalf("retry seq=%d hint=%d, want 9/%d", resp.Seq, resp.Progress, DefaultRetryAfterMs)
	}

	// An unknown key can likewise never be served; the client honors the
	// retry hint and gives up with the context.
	ro := NewROClient(cnet.Endpoint(transport.Worker(13)), 0)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	if _, _, err := ro.PullKeys(ctx, []keyrange.Key{99}, nil); err == nil {
		t.Fatal("pull of an unknown key succeeded")
	}
}

// HandleRO serves ROClients over mux streams end to end: many streams,
// one session, every reader seeing whole consistent snapshots.
func TestHandleROOverMux(t *testing.T) {
	_, srv, layout, _ := testServer(t, syncmodel.ASP(), syncmodel.Lazy, 2)

	cc, sc := net.Pipe()
	serverSess := transport.NewMuxServer(sc, transport.MuxConfig{})
	clientSess := transport.NewMuxClient(cc, transport.MuxConfig{})
	t.Cleanup(func() { _ = clientSess.Close(); _ = serverSess.Close() })
	go func() {
		for {
			st, err := serverSess.AcceptStream()
			if err != nil {
				return
			}
			go func(st *transport.MuxStream) { _ = srv.HandleRO(st) }(st)
		}
	}()

	const clients, pulls = 4, 20
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, err := clientSess.OpenStream()
			if err != nil {
				fail(err)
				return
			}
			defer st.Close()
			ro := NewROClient(st, 0)
			dst := make([]float64, layout.TotalDim())
			for n := 0; n < pulls; n++ {
				if _, _, err := ro.Pull(tctx, dst); err != nil {
					fail(err)
					return
				}
				for j, v := range dst {
					if v != 1 {
						fail(fmt.Errorf("torn RO pull: scalar %d = %v, want 1", j, v))
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := int(srv.roServed.Load()); got < clients*pulls {
		t.Fatalf("served %d RO pulls, want >= %d", got, clients*pulls)
	}
}

// Admission control: with the reader pool not yet draining (server not
// running), the queue fills to its depth and the next submit is shed
// with an immediate retry-after instead of blocking or growing.
func TestROAdmissionControlShedsWhenSaturated(t *testing.T) {
	layout := keyrange.MustLayout([]int{2})
	assign, _ := keyrange.EPS(layout, 1)
	cnet := transport.NewChanNetwork(4)
	srv, err := NewServer(cnet.Endpoint(transport.Server(0)), ServerConfig{
		Rank: 0, NumWorkers: 1, Layout: layout, Assignment: assign,
		Model: syncmodel.ASP(), ReaderPool: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	sink := &captureSender{}
	depth := roQueueDepth(1)
	for i := 0; i < depth; i++ {
		srv.submitRO(&transport.Message{Type: transport.MsgPullRO, Seq: uint64(i)}, sink)
	}
	if len(sink.msgs) != 0 {
		t.Fatalf("pool queue shed %d messages before saturation", len(sink.msgs))
	}
	srv.submitRO(&transport.Message{Type: transport.MsgPullRO, Seq: 999}, sink)
	if len(sink.msgs) != 1 || sink.msgs[0].Type != transport.MsgPullRORetry {
		t.Fatalf("saturated submit answered %+v, want one pull_ro_retry", sink.msgs)
	}
	if sink.msgs[0].Seq != 999 || sink.msgs[0].Progress != DefaultRetryAfterMs {
		t.Fatalf("retry seq=%d hint=%d", sink.msgs[0].Seq, sink.msgs[0].Progress)
	}
}

type captureSender struct{ msgs []*transport.Message }

func (c *captureSender) Send(m *transport.Message) error {
	c.msgs = append(c.msgs, m)
	return nil
}

// ReaderPool < 0 disables the pool: the apply loop serves MsgPullRO
// inline, still from the snapshot.
func TestROInlineFallback(t *testing.T) {
	layout := keyrange.MustLayout([]int{2, 3})
	assign, _ := keyrange.EPS(layout, 1)
	cnet := transport.NewChanNetwork(64)
	srv, err := NewServer(cnet.Endpoint(transport.Server(0)), ServerConfig{
		Rank: 0, NumWorkers: 2, Layout: layout, Assignment: assign,
		Model: syncmodel.ASP(), Drain: syncmodel.Lazy,
		Init:       func(k keyrange.Key, seg []float64) { seg[0] = 4 },
		ReaderPool: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if srv.roQueue != nil {
		t.Fatal("ReaderPool=-1 still built a pool queue")
	}
	go srv.Run()
	t.Cleanup(func() {
		ep := cnet.Endpoint(transport.Worker(99))
		_ = ep.Send(&transport.Message{Type: transport.MsgShutdown, To: transport.Server(0)})
		ep.Close()
	})

	ro := NewROClient(cnet.Endpoint(transport.Worker(7)), 0)
	dst := make([]float64, layout.TotalDim())
	epoch, _, err := ro.Pull(tctx, dst)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 || dst[0] != 4 || dst[2] != 4 || dst[1] != 0 {
		t.Fatalf("inline RO pull epoch=%d dst=%v", epoch, dst)
	}
}

// The reader pool's goroutines exit with Run: repeated server lifecycles
// leave no goroutines behind (the leakcheck discipline, dynamically).
func TestROReaderPoolShutdownLeakFree(t *testing.T) {
	layout := keyrange.MustLayout([]int{2})
	assign, _ := keyrange.EPS(layout, 1)
	before := runtime.NumGoroutine()

	for i := 0; i < 5; i++ {
		cnet := transport.NewChanNetwork(16)
		sep := cnet.Endpoint(transport.Server(0))
		srv, err := NewServer(sep, ServerConfig{
			Rank: 0, NumWorkers: 1, Layout: layout, Assignment: assign,
			Model: syncmodel.ASP(), ReaderPool: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- srv.Run() }()

		rep := cnet.Endpoint(transport.Worker(3))
		ro := NewROClient(rep, 0)
		if _, _, err := ro.Pull(tctx, nil); err != nil {
			t.Fatal(err)
		}
		rep.Close()
		ep := cnet.Endpoint(transport.Worker(99))
		_ = ep.Send(&transport.Message{Type: transport.MsgShutdown, To: transport.Server(0)})
		ep.Close()
		if err := <-done; err != nil {
			t.Fatal(err)
		}
		// Unblock the receive goroutine still parked in Recv.
		sep.Close()
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked across server lifecycles: %d before, %d after",
				before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
