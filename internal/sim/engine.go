// Package sim is a deterministic discrete-event simulator of a
// parameter-server cluster. It stands in for the paper's physical
// clusters (32 GPU nodes on AWS; 64–128 CPU nodes), which are not
// available here — see DESIGN.md §2.
//
// The crucial property is that only *time* is simulated: gradients are
// really computed, optimizers really applied, and parameters really
// aggregated, in the exact order the simulated schedule induces. Accuracy
// curves are therefore genuine SGD under each synchronization protocol,
// while wall-clock effects (stragglers, network contention, barrier
// serialization) come from explicit compute and network models.
//
// Three architectures are simulated on the same engine: FluentPS
// (per-shard condition-aware controllers, overlap synchronization),
// PS-Lite (central scheduler barrier, non-overlap), and SSPtable
// (client-side caches with vector-clock invalidation).
package sim

import (
	"container/heap"
)

// event is one scheduled callback.
type event struct {
	t   float64
	seq int64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq // FIFO among simultaneous events
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is a single-goroutine discrete-event loop. All callbacks run
// sequentially in time order, so simulated components need no locking.
type Engine struct {
	q   eventQueue
	now float64
	seq int64
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// After schedules fn to run delay seconds from now. Negative delays are
// clamped to zero (run "immediately", after already-queued events at the
// current instant).
func (e *Engine) After(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.seq++
	heap.Push(&e.q, &event{t: e.now + delay, seq: e.seq, fn: fn})
}

// At schedules fn at an absolute time, clamped to now.
func (e *Engine) At(t float64, fn func()) {
	e.After(t-e.now, fn)
}

// Run processes events until the queue empties and returns the final
// simulated time.
func (e *Engine) Run() float64 {
	for e.q.Len() > 0 {
		ev := heap.Pop(&e.q).(*event)
		e.now = ev.t
		ev.fn()
	}
	return e.now
}

// Pending returns the number of queued events (useful for deadlock
// assertions in tests: a run that ends with blocked workers ends early).
func (e *Engine) Pending() int { return e.q.Len() }
