package sim

import (
	"testing"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := NewEngine()
	var order []int
	e.After(3, func() { order = append(order, 3) })
	e.After(1, func() { order = append(order, 1) })
	e.After(2, func() { order = append(order, 2) })
	end := e.Run()
	if end != 3 {
		t.Errorf("final time = %v, want 3", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
}

func TestEngineFIFOAmongSimultaneous(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(1, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events reordered: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []float64
	e.After(1, func() {
		times = append(times, e.Now())
		e.After(2, func() {
			times = append(times, e.Now())
		})
	})
	e.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Errorf("times = %v", times)
	}
}

func TestEngineNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	ran := false
	e.After(5, func() {
		e.After(-10, func() {
			if e.Now() != 5 {
				t.Errorf("clamped event ran at %v", e.Now())
			}
			ran = true
		})
	})
	e.Run()
	if !ran {
		t.Error("clamped event never ran")
	}
}

func TestEngineAtAbsolute(t *testing.T) {
	e := NewEngine()
	var at float64 = -1
	e.After(2, func() {
		e.At(7, func() { at = e.Now() })
	})
	e.Run()
	if at != 7 {
		t.Errorf("At event ran at %v, want 7", at)
	}
}

func TestEnginePending(t *testing.T) {
	e := NewEngine()
	if e.Pending() != 0 {
		t.Error("fresh engine has pending events")
	}
	e.After(1, func() {})
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Error("events left after Run")
	}
}

func TestNetworkSingleTransferTiming(t *testing.T) {
	e := NewEngine()
	n := newNetwork(NetworkModel{Latency: 0.01, Bandwidth: 1000}, e, 2)
	var arrived float64 = -1
	n.send(0, 1, 500, func() { arrived = e.Now() })
	e.Run()
	// occupancy 0.5s at sender + 0.01 latency + 0.5s at receiver.
	want := 0.5 + 0.01 + 0.5
	if diff := arrived - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("arrival = %v, want %v", arrived, want)
	}
	if n.txBytes[0] != 500 || n.rxBytes[1] != 500 {
		t.Errorf("byte counters tx=%d rx=%d", n.txBytes[0], n.rxBytes[1])
	}
}

func TestNetworkReceiverSerialization(t *testing.T) {
	// Two senders, one receiver: the second message must queue at the
	// receiver NIC.
	e := NewEngine()
	n := newNetwork(NetworkModel{Latency: 0, Bandwidth: 1000}, e, 3)
	var t1, t2 float64
	n.send(0, 2, 1000, func() { t1 = e.Now() })
	n.send(1, 2, 1000, func() { t2 = e.Now() })
	e.Run()
	// Each occupies 1s at its sender (parallel) and 1s at the shared
	// receiver (serialized): first done at 2, second at 3.
	if t1 != 2 || t2 != 3 {
		t.Errorf("arrivals = %v, %v; want 2, 3", t1, t2)
	}
}

func TestNetworkSenderSerialization(t *testing.T) {
	// One sender, two receivers: the second departure queues at the
	// sender NIC.
	e := NewEngine()
	n := newNetwork(NetworkModel{Latency: 0, Bandwidth: 1000}, e, 3)
	var t1, t2 float64
	n.send(0, 1, 1000, func() { t1 = e.Now() })
	n.send(0, 2, 1000, func() { t2 = e.Now() })
	e.Run()
	if t1 != 2 || t2 != 3 {
		t.Errorf("arrivals = %v, %v; want 2, 3", t1, t2)
	}
}

func TestComputeModelValidation(t *testing.T) {
	bad := []ComputeModel{
		{Mean: 0},
		{Mean: 1, CV: -1},
		{Mean: 1, StraggleProb: 2},
		{Mean: 1, StraggleProb: 0.1, StraggleFactor: 0.5},
		{Mean: 1, SpeedSpread: -1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad compute model %d accepted", i)
		}
	}
	if err := (ComputeModel{Mean: 1, CV: 0.2, StraggleProb: 0.05, StraggleFactor: 4}).Validate(); err != nil {
		t.Errorf("good model rejected: %v", err)
	}
}

func TestNetworkModelValidation(t *testing.T) {
	if err := (NetworkModel{Latency: -1, Bandwidth: 1}).Validate(); err == nil {
		t.Error("negative latency accepted")
	}
	if err := (NetworkModel{Latency: 0, Bandwidth: 0}).Validate(); err == nil {
		t.Error("zero bandwidth accepted")
	}
}

func TestComputeSamplerDeterministicAndStraggles(t *testing.T) {
	m := ComputeModel{Mean: 1, CV: 0.2, StraggleProb: 0.2, StraggleFactor: 10}
	a := newComputeSampler(m, 9, 0)
	b := newComputeSampler(m, 9, 0)
	other := newComputeSampler(m, 9, 1)
	slowSeen := false
	differ := false
	for i := 0; i < 200; i++ {
		va, vb, vo := a.sample(), b.sample(), other.sample()
		if va != vb {
			t.Fatal("same worker+seed must give identical samples")
		}
		if va != vo {
			differ = true
		}
		if va > 5 {
			slowSeen = true
		}
	}
	if !differ {
		t.Error("different workers drew identical streams")
	}
	if !slowSeen {
		t.Error("straggler injection never fired in 200 draws at p=0.2")
	}
}
