package transport

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCPEndpoint is a node endpoint backed by real TCP sockets, for
// multi-process deployments (one process per scheduler/server/worker).
//
// Each endpoint listens on its own address and lazily dials peers from an
// address book. Connections are cached; writes to one peer are serialized
// through a per-connection mutex, and a background accept loop feeds all
// inbound messages into a single inbox so Recv has the same semantics as
// the in-process network.
// RedialPolicy bounds how a TCPEndpoint's Send recovers from a dead or
// undialable peer connection: after the first failed write the endpoint
// redials immediately once, then backs off exponentially from Base up to
// Max for the remaining attempts.
type RedialPolicy struct {
	// Attempts is the number of retries after the initial try. Zero
	// disables reconnection (a single failed write fails the Send).
	Attempts int
	// Base is the backoff before the second retry (the first retry is
	// immediate, preserving the fast path for stale cached connections);
	// it doubles per subsequent retry.
	Base time.Duration
	// Max caps the backoff. Zero means no cap.
	Max time.Duration
}

// DefaultRedial is the reconnect policy new TCP endpoints start with.
var DefaultRedial = RedialPolicy{Attempts: 3, Base: 10 * time.Millisecond, Max: 250 * time.Millisecond}

// delay returns the pause before retry number n (counting from 1).
func (p RedialPolicy) delay(n int) time.Duration {
	if n <= 1 || p.Base <= 0 {
		return 0 // first retry is immediate
	}
	d := p.Base
	for i := 2; i < n; i++ {
		d *= 2
		if p.Max > 0 && d >= p.Max {
			return p.Max
		}
	}
	if p.Max > 0 && d > p.Max {
		return p.Max
	}
	return d
}

type TCPEndpoint struct {
	id       NodeID
	listener net.Listener
	book     map[NodeID]string
	redial   RedialPolicy

	inbox chan *Message
	done  chan struct{}

	mu    sync.Mutex
	conns map[NodeID]*tcpConn

	closeOnce sync.Once
	wg        sync.WaitGroup
}

type tcpConn struct {
	mu sync.Mutex // serializes frame writes
	c  net.Conn
	w  *bufio.Writer
}

// ListenTCP creates an endpoint for id listening on addr (e.g.
// "127.0.0.1:9001"). book maps every peer's NodeID to its dialable
// address; entries may be added for nodes that start later, as dialing is
// lazy. Passing addr ":0" picks a free port — read it back via Addr.
func ListenTCP(id NodeID, addr string, book map[NodeID]string) (*TCPEndpoint, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	e := &TCPEndpoint{
		id:       id,
		listener: ln,
		book:     make(map[NodeID]string, len(book)),
		inbox:    make(chan *Message, 1024),
		done:     make(chan struct{}),
		conns:    make(map[NodeID]*tcpConn),
	}
	e.redial = DefaultRedial
	for k, v := range book {
		e.book[k] = v
	}
	e.wg.Add(1)
	go e.acceptLoop()
	return e, nil
}

// Addr returns the address the endpoint is listening on.
func (e *TCPEndpoint) Addr() string { return e.listener.Addr().String() }

// ID returns the node this endpoint belongs to.
func (e *TCPEndpoint) ID() NodeID { return e.id }

// SetRedial replaces the endpoint's reconnect policy. Call it before the
// endpoint is shared with sending goroutines.
func (e *TCPEndpoint) SetRedial(p RedialPolicy) { e.redial = p }

// SetPeer registers or updates a peer's address in the address book.
func (e *TCPEndpoint) SetPeer(id NodeID, addr string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.book[id] = addr
}

func (e *TCPEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		c, err := e.listener.Accept()
		if err != nil {
			return // listener closed
		}
		e.wg.Add(1)
		go e.readLoop(c)
	}
}

func (e *TCPEndpoint) readLoop(c net.Conn) {
	defer e.wg.Done()
	defer c.Close()
	r := bufio.NewReader(c)
	wrapped := &tcpConn{c: c, w: bufio.NewWriter(c)}
	var peer NodeID
	registered := false
	defer func() {
		// Unregister the reply path when the connection dies so later
		// sends do not pick a dead socket.
		if registered {
			e.dropConn(peer, wrapped)
		}
	}()
	for {
		m, err := ReadFrame(r)
		if err != nil {
			return // EOF or broken peer; outstanding requests time out upstream
		}
		if !registered {
			// Adopt the connection as the reply path to this peer, so
			// nodes we cannot dial (admin tools, workers behind NAT) can
			// still be answered.
			e.mu.Lock()
			if _, ok := e.conns[m.From]; !ok {
				e.conns[m.From] = wrapped
				peer = m.From
				registered = true
			}
			e.mu.Unlock()
		}
		select {
		case e.inbox <- m:
		case <-e.done:
			return
		}
	}
}

// Send delivers m to m.To, dialing the peer on first use. A write or dial
// failure (e.g. a stale reply path whose peer went away, or a peer that is
// restarting) drops the cached connection and reconnects: the first retry
// redials immediately, later retries back off exponentially per the
// endpoint's RedialPolicy. A peer with no address-book entry fails
// immediately — waiting cannot conjure an address.
func (e *TCPEndpoint) Send(m *Message) error {
	if m.From == (NodeID{}) {
		m.From = e.id
	}
	var lastErr error
	for attempt := 0; attempt <= e.redial.Attempts; attempt++ {
		if d := e.redial.delay(attempt); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-e.done:
				t.Stop()
				return ErrClosed
			case <-t.C:
			}
		}
		select {
		case <-e.done:
			return ErrClosed
		default:
		}
		conn, err := e.conn(m.To)
		if err != nil {
			if errorIsNoAddr(err) {
				if lastErr != nil {
					return fmt.Errorf("%w (after reconnect: %v)", lastErr, err)
				}
				return err
			}
			lastErr = err
			continue
		}
		if err := e.writeTo(conn, m); err != nil {
			e.dropConn(m.To, conn)
			lastErr = err
			continue
		}
		return nil
	}
	return fmt.Errorf("transport: send to %s failed after %d attempts: %w", m.To, e.redial.Attempts+1, lastErr)
}

// SendCopies reports true: Send encodes m into a frame before returning,
// so callers may recycle a pooled message as soon as Send completes.
func (e *TCPEndpoint) SendCopies() bool { return true }

func (e *TCPEndpoint) writeTo(conn *tcpConn, m *Message) error {
	conn.mu.Lock()
	defer conn.mu.Unlock()
	if err := WriteFrame(conn.w, m); err != nil {
		return err
	}
	if err := conn.w.Flush(); err != nil {
		return fmt.Errorf("transport: flush to %s: %w", m.To, err)
	}
	return nil
}

func (e *TCPEndpoint) conn(to NodeID) (*tcpConn, error) {
	e.mu.Lock()
	if c, ok := e.conns[to]; ok {
		e.mu.Unlock()
		return c, nil
	}
	addr, ok := e.book[to]
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: %w for %s", errNoAddr, to)
	}
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s (%s): %w", to, addr, err)
	}
	c := &tcpConn{c: raw, w: bufio.NewWriter(raw)}
	e.mu.Lock()
	if existing, ok := e.conns[to]; ok {
		// Lost a race with a concurrent dial; keep the established one.
		e.mu.Unlock()
		raw.Close()
		return existing, nil
	}
	e.conns[to] = c
	e.mu.Unlock()
	// Connections are bidirectional: the peer replies over this socket
	// (it may have no dialable address for us), so read from it too.
	e.wg.Add(1)
	go e.readLoop(raw)
	return c, nil
}

func (e *TCPEndpoint) dropConn(to NodeID, c *tcpConn) {
	c.c.Close()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.conns[to] == c {
		delete(e.conns, to)
	}
}

// Recv returns the next inbound message, or ErrClosed after Close. EOF on
// an individual peer connection is not an endpoint error; it simply stops
// that peer's stream.
func (e *TCPEndpoint) Recv() (*Message, error) {
	select {
	case m := <-e.inbox:
		return m, nil
	case <-e.done:
		select {
		case m := <-e.inbox:
			return m, nil
		default:
			return nil, ErrClosed
		}
	}
}

// Close shuts the listener and all cached connections.
func (e *TCPEndpoint) Close() error {
	e.closeOnce.Do(func() {
		close(e.done)
		e.listener.Close()
		e.mu.Lock()
		for _, c := range e.conns {
			c.c.Close()
		}
		e.conns = map[NodeID]*tcpConn{}
		e.mu.Unlock()
	})
	return nil
}

// errNoAddr marks the one non-retryable Send failure: an unknown peer.
var errNoAddr = fmt.Errorf("no address")

func errorIsNoAddr(err error) bool { return errors.Is(err, errNoAddr) }

var (
	_ Endpoint  = (*TCPEndpoint)(nil)
	_ io.Closer = (*TCPEndpoint)(nil)
)
