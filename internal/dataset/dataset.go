// Package dataset generates deterministic synthetic classification
// datasets that stand in for CIFAR-10 and CIFAR-100 in the paper's
// experiments.
//
// The real datasets (and the Caffe pipelines that consume them) are not
// available in this environment; what the experiments actually require is
// a classification task whose accuracy responds to how gradients are
// aggregated — stale or missing gradients must measurably hurt
// convergence. A Gaussian-mixture task provides exactly that coupling:
// class centers are well separated but noisy enough that the decision
// boundary must be learned over many SGD rounds, so every synchronization
// pathology the paper studies shows up in the accuracy curve.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/fluentps/fluentps/internal/mathx"
)

// Dataset is a labelled classification sample set.
type Dataset struct {
	// X holds one row per example, each of length Dim.
	X [][]float64
	// Y holds class labels in [0, Classes).
	Y       []int
	Classes int
	Dim     int
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.Y) }

// Config parameterizes Synthetic.
type Config struct {
	Classes   int
	Dim       int
	TrainSize int
	TestSize  int
	// Separation scales the distance between class centers; NoiseStd is
	// the within-class standard deviation. Their ratio controls task
	// difficulty (and thus the achievable test accuracy).
	Separation float64
	NoiseStd   float64
	// Modes is the number of sub-clusters per class (default 1). With
	// Modes > 1 each class is a mixture: its sub-cluster centers combine
	// a class-specific linear direction with positions on a ring in a
	// 2-D subspace where the classes' modes *interleave angularly* — a
	// structure no linear decision boundary can carve. This makes the
	// Bayes boundary genuinely non-linear, so a linear classifier (the
	// AlexNet proxy) plateaus well below a non-linear one (the ResNet
	// proxy), mirroring the paper's accuracy gap between the two
	// networks. ModeSpread ∈ [0,1] is the fraction of the separation
	// budget put into the non-linear ring component; 0 degenerates to a
	// plain (linearly separable) mixture.
	Modes      int
	ModeSpread float64
	// Style selects how multi-mode sub-clusters are placed; see the
	// ModeStyle constants. The zero value is the staggered-ring style.
	Style ModeStyle
	Seed  int64
}

// ModeStyle selects the geometry of multi-mode classes.
type ModeStyle uint8

// Mode placement styles.
const (
	// StyleRing places modes on staggered concentric rings in a 2-D
	// subspace ("dartboard spiral"); good for ~10 classes.
	StyleRing ModeStyle = iota
	// StyleAntipodal places the two modes of each class at ±u_c along a
	// class-specific direction (an XOR-like structure). An
	// argmax-of-linear-scores classifier can respond to at most one of
	// the two antipodes, capping linear accuracy near half the
	// non-linear one — the right shape for the 100-class task, where
	// thin ring sectors would drown in noise. Requires Modes == 2.
	StyleAntipodal
)

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Classes < 2:
		return fmt.Errorf("dataset: need at least 2 classes, got %d", c.Classes)
	case c.Dim < 1:
		return fmt.Errorf("dataset: need positive dimensionality, got %d", c.Dim)
	case c.TrainSize < c.Classes || c.TestSize < c.Classes:
		return fmt.Errorf("dataset: need at least one example per class (train=%d test=%d classes=%d)",
			c.TrainSize, c.TestSize, c.Classes)
	case c.NoiseStd < 0 || c.Separation <= 0:
		return fmt.Errorf("dataset: need Separation>0 and NoiseStd≥0, got %v/%v", c.Separation, c.NoiseStd)
	case c.Modes < 0 || c.ModeSpread < 0 || c.ModeSpread > 1:
		return fmt.Errorf("dataset: need Modes≥0 and ModeSpread in [0,1], got %d/%v", c.Modes, c.ModeSpread)
	case c.Modes > 1 && c.Style == StyleRing && c.ModeSpread > 0 && c.Dim < 3:
		return fmt.Errorf("dataset: the multi-mode ring construction needs Dim≥3, got %d", c.Dim)
	case c.Style == StyleAntipodal && c.Modes != 2:
		return fmt.Errorf("dataset: the antipodal construction needs exactly 2 modes, got %d", c.Modes)
	}
	return nil
}

// Synthetic generates a train/test pair from a Gaussian mixture: one
// random unit-direction center per class scaled by Separation, plus
// isotropic noise. The same Config always produces the same data.
func Synthetic(cfg Config) (train, test *Dataset, err error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	modes := cfg.Modes
	if modes == 0 {
		modes = 1
	}
	centerRNG := mathx.RNG(cfg.Seed, "dataset.centers")
	randDir := func(scale float64) []float64 {
		v := make([]float64, cfg.Dim)
		for i := range v {
			v[i] = centerRNG.NormFloat64()
		}
		norm := mathx.Norm2(v)
		if norm == 0 {
			norm = 1
		}
		mathx.Scale(scale/norm, v)
		return v
	}
	// subCenters[c][m] is the m-th sub-cluster center of class c. With a
	// single mode it is a random direction of length Separation. With
	// multiple modes the separation budget splits into a linear part
	// (class-specific random direction, weight √(1−γ²), γ = ModeSpread)
	// and a "staggered dartboard" part in the first two coordinates:
	// mode m lives on a ring of radius γ·Separation·(1+m/2) at angle
	// 2π(c + m/M)/K. Within one ring the classes form angular sectors —
	// which an argmax-of-linear-scores classifier *can* carve — but the
	// sectors rotate by a fraction of their width from ring to ring, so
	// each class region is a spiral no single conic partition matches.
	// A non-linear model recovers the structure; a linear one cannot.
	subCenters := make([][][]float64, cfg.Classes)
	gamma := cfg.ModeSpread
	beta := math.Sqrt(1 - gamma*gamma)
	// ringStagger rotates each successive ring by 3/4 of a class sector,
	// so a class's modes span 1.5 sectors of spiral — far outside what a
	// single conic (argmax-linear) partition can cover.
	const ringStagger = 0.45
	for c := range subCenters {
		center := randDir(cfg.Separation)
		subCenters[c] = make([][]float64, modes)
		var axis []float64
		if cfg.Style == StyleAntipodal && modes > 1 {
			axis = randDir(cfg.Separation)
		}
		for m := 0; m < modes; m++ {
			sc := make([]float64, cfg.Dim)
			switch {
			case modes == 1:
				copy(sc, center)
			case cfg.Style == StyleAntipodal:
				mathx.Axpy(beta, center, sc)
				sign := 1.0
				if m == 1 {
					sign = -1
				}
				mathx.Axpy(sign*gamma, axis, sc)
			default: // StyleRing
				mathx.Axpy(beta, center, sc)
				radius := gamma * cfg.Separation * (1 + float64(m)/2)
				angle := 2 * math.Pi * (float64(c) + ringStagger*float64(m)) / float64(cfg.Classes)
				sc[0] += radius * math.Cos(angle)
				sc[1] += radius * math.Sin(angle)
			}
			subCenters[c][m] = sc
		}
	}
	gen := func(n int, stream string) *Dataset {
		rng := mathx.RNG(cfg.Seed, stream)
		d := &Dataset{
			X:       make([][]float64, n),
			Y:       make([]int, n),
			Classes: cfg.Classes,
			Dim:     cfg.Dim,
		}
		for i := 0; i < n; i++ {
			c := i % cfg.Classes // balanced classes
			sc := subCenters[c][rng.Intn(modes)]
			x := make([]float64, cfg.Dim)
			for j := range x {
				x[j] = sc[j] + cfg.NoiseStd*rng.NormFloat64()
			}
			d.X[i] = x
			d.Y[i] = c
		}
		return d
	}
	return gen(cfg.TrainSize, "dataset.train"), gen(cfg.TestSize, "dataset.test"), nil
}

// CIFAR10Like returns a 10-class task sized so full experiments run in
// seconds. The noise level is tuned so a linear classifier tops out around
// the paper's AlexNet-on-CIFAR-10 accuracy (~0.76) and a small MLP reaches
// the ResNet-56 regime (~0.93) — keeping the reproduced accuracy numbers
// on the paper's scale.
// Measured with tuned single-node SGD: softmax ≈ 0.74, MLP ≈ 0.94 (paper:
// AlexNet 0.765, ResNet-56 0.932).
func CIFAR10Like(seed int64) (train, test *Dataset) {
	train, test, err := Synthetic(Config{
		Classes: 10, Dim: 16,
		TrainSize: 8000, TestSize: 2000,
		Separation: 3.0, NoiseStd: 0.5,
		Modes: 3, ModeSpread: 1.0, Style: StyleRing,
		Seed: seed,
	})
	if err != nil {
		panic(err) // static config cannot fail
	}
	return train, test
}

// CIFAR100Like returns a 100-class task; with 100 classes sharing the same
// space the task is much harder, matching the paper's far lower CIFAR-100
// accuracies (~0.43 linear, ~0.69 MLP).
// Measured with tuned single-node SGD: softmax ≈ 0.43, MLP ≈ 0.70 (paper:
// AlexNet 0.438, ResNet-56 0.692).
func CIFAR100Like(seed int64) (train, test *Dataset) {
	train, test, err := Synthetic(Config{
		Classes: 100, Dim: 24,
		TrainSize: 20000, TestSize: 4000,
		Separation: 3.0, NoiseStd: 0.7,
		Modes: 2, ModeSpread: 0.72, Style: StyleAntipodal,
		Seed: seed,
	})
	if err != nil {
		panic(err)
	}
	return train, test
}

// Batch samples a minibatch of the given size with replacement into the
// provided rng's stream, returning views of the dataset rows (not copies).
func (d *Dataset) Batch(rng *rand.Rand, size int) (x [][]float64, y []int) {
	if size <= 0 {
		return nil, nil
	}
	x = make([][]float64, size)
	y = make([]int, size)
	for i := 0; i < size; i++ {
		j := rng.Intn(d.Len())
		x[i] = d.X[j]
		y[i] = d.Y[j]
	}
	return x, y
}

// Shard returns the n-th of total contiguous data-parallel partitions.
// Partition sizes differ by at most one example.
func (d *Dataset) Shard(n, total int) (*Dataset, error) {
	if total <= 0 || n < 0 || n >= total {
		return nil, fmt.Errorf("dataset: invalid shard %d of %d", n, total)
	}
	lo := n * d.Len() / total
	hi := (n + 1) * d.Len() / total
	if lo == hi {
		return nil, fmt.Errorf("dataset: shard %d of %d is empty (%d examples)", n, total, d.Len())
	}
	return &Dataset{X: d.X[lo:hi], Y: d.Y[lo:hi], Classes: d.Classes, Dim: d.Dim}, nil
}

// Stats summarizes per-class counts, mostly for sanity checks and tests.
func (d *Dataset) Stats() (perClass []int, meanNorm float64) {
	perClass = make([]int, d.Classes)
	for i, y := range d.Y {
		perClass[y]++
		meanNorm += mathx.Norm2(d.X[i])
	}
	if d.Len() > 0 {
		meanNorm /= float64(d.Len())
	}
	return perClass, meanNorm
}

// LinRegDataset is a synthetic linear-regression task used by the regret
// (Theorem 1/2) experiments, where the SGD regret bounds assume convex
// per-example losses.
type LinRegDataset struct {
	X [][]float64
	Y []float64
	// WStar is the generating weight vector, so tests can compare the
	// learned solution against ground truth.
	WStar []float64
}

// LinReg generates y = ⟨w*, x⟩ + noise with x ~ N(0, I).
func LinReg(n, dim int, noiseStd float64, seed int64) *LinRegDataset {
	if n <= 0 || dim <= 0 {
		panic(fmt.Sprintf("dataset: invalid linreg size n=%d dim=%d", n, dim))
	}
	rng := mathx.RNG(seed, "dataset.linreg")
	w := make([]float64, dim)
	for i := range w {
		w[i] = rng.NormFloat64() / math.Sqrt(float64(dim))
	}
	d := &LinRegDataset{X: make([][]float64, n), Y: make([]float64, n), WStar: w}
	for i := 0; i < n; i++ {
		x := make([]float64, dim)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		d.X[i] = x
		d.Y[i] = mathx.Dot(w, x) + noiseStd*rng.NormFloat64()
	}
	return d
}
