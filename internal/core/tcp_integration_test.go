package core

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"github.com/fluentps/fluentps/internal/dataset"
	"github.com/fluentps/fluentps/internal/keyrange"
	"github.com/fluentps/fluentps/internal/mathx"
	"github.com/fluentps/fluentps/internal/mlmodel"
	"github.com/fluentps/fluentps/internal/optimizer"
	"github.com/fluentps/fluentps/internal/syncmodel"
	"github.com/fluentps/fluentps/internal/transport"
)

// TestTCPEndToEndTraining runs a small but complete cluster — scheduler,
// 2 servers, 3 workers — over real TCP sockets on localhost, exercising
// registration, SSP synchronization with lazy drains, and convergence.
func TestTCPEndToEndTraining(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP integration test skipped in -short mode")
	}
	const (
		servers = 2
		workers = 3
		iters   = 60
	)
	train, test := dataset.CIFAR10Like(41)
	model, err := mlmodel.NewSoftmax(10, train.Dim, nil)
	if err != nil {
		t.Fatal(err)
	}
	layout := model.Layout()
	assign, err := keyrange.EPS(layout, servers)
	if err != nil {
		t.Fatal(err)
	}
	w0 := make([]float64, model.Dim())
	model.Init(mathx.RNG(3, "init"), w0)

	// Bring up all endpoints on ephemeral ports, then exchange the
	// address book.
	book := map[transport.NodeID]string{}
	var eps []*transport.TCPEndpoint
	listen := func(id transport.NodeID) *transport.TCPEndpoint {
		ep, err := transport.ListenTCP(id, "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		book[id] = ep.Addr()
		eps = append(eps, ep)
		return ep
	}
	schedEP := listen(transport.Scheduler())
	serverEPs := make([]*transport.TCPEndpoint, servers)
	for m := 0; m < servers; m++ {
		serverEPs[m] = listen(transport.Server(m))
	}
	workerEPs := make([]*transport.TCPEndpoint, workers)
	for n := 0; n < workers; n++ {
		workerEPs[n] = listen(transport.Worker(n))
	}
	for _, ep := range eps {
		for id, addr := range book {
			ep.SetPeer(id, addr)
		}
	}
	t.Cleanup(func() {
		for _, ep := range eps {
			ep.Close()
		}
	})

	sched, err := NewScheduler(schedEP, servers, workers)
	if err != nil {
		t.Fatal(err)
	}
	go sched.Run(context.Background())

	errs := make(chan error, servers+workers+1)

	// Servers: announce to the scheduler, then serve immediately so that
	// workers released by the quorum find them ready.
	for m := 0; m < servers; m++ {
		go func(m int) {
			errs <- func() error {
				if err := RegisterAsync(serverEPs[m]); err != nil {
					return fmt.Errorf("server %d register: %w", m, err)
				}
				srv, err := NewServer(serverEPs[m], ServerConfig{
					Rank:       m,
					NumWorkers: workers,
					Layout:     layout,
					Assignment: assign,
					Model:      syncmodel.SSP(2),
					Drain:      syncmodel.Lazy,
					Init: func(k keyrange.Key, seg []float64) {
						copy(seg, layout.Slice(w0, k))
					},
					Seed: 5,
				})
				if err != nil {
					return err
				}
				return srv.Run()
			}()
		}(m)
	}

	// Workers: register, then train; the final accuracy check happens on
	// worker 0's last parameter view.
	var accMu sync.Mutex
	finalAcc := -1.0
	for n := 0; n < workers; n++ {
		go func(n int) {
			errs <- func() error {
				if err := Register(context.Background(), workerEPs[n]); err != nil {
					return fmt.Errorf("worker %d register: %w", n, err)
				}
				w, err := NewWorker(workerEPs[n], WorkerConfig{Rank: n, Layout: layout, Assignment: assign})
				if err != nil {
					return err
				}
				shard, err := train.Shard(n, workers)
				if err != nil {
					return err
				}
				opt := &optimizer.SGD{LR: 0.1}
				params := append([]float64(nil), w0...)
				grad := make([]float64, len(params))
				delta := make([]float64, len(params))
				rng := mathx.RNG(5, fmt.Sprintf("tcp.worker.%d", n))
				for i := 0; i < iters; i++ {
					x, y := shard.Batch(rng, 16)
					model.Gradient(params, x, y, grad)
					opt.Delta(params, grad, delta)
					if err := w.SPush(tctx, i, delta); err != nil {
						return err
					}
					if i < iters-1 {
						if err := w.SPull(tctx, i, params); err != nil {
							return err
						}
					}
				}
				if n == 0 {
					_, acc := model.Evaluate(params, test)
					accMu.Lock()
					finalAcc = acc
					accMu.Unlock()
				}
				return nil
			}()
		}(n)
	}

	// Wait for the workers to finish, then shut the servers down.
	for i := 0; i < workers; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	for m := 0; m < servers; m++ {
		if err := workerEPs[0].Send(&transport.Message{
			Type: transport.MsgShutdown, To: transport.Server(m),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < servers; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	accMu.Lock()
	defer accMu.Unlock()
	if finalAcc < 0.4 {
		t.Errorf("final accuracy over TCP = %.3f, want ≥ 0.4", finalAcc)
	}
}
