package experiments

import "testing"

// TestAdaptiveSweepBeatsFixedPresets is the acceptance gate for the
// runtime-adaptive controller: on the heterogeneous-cluster traces the
// adaptive policy must match or beat the hindsight-best fixed preset
// (BSP, ASP, and the SSP staleness sweep) on at least two traces, and
// never lose badly on any.
func TestAdaptiveSweepBeatsFixedPresets(t *testing.T) {
	results := AdaptiveSweep(Options{Seed: 1})
	if len(results) < 2 {
		t.Fatalf("sweep covered %d traces, want ≥ 2 heterogeneous traces", len(results))
	}
	wins := 0
	for _, res := range results {
		t.Logf("trace %-12s best fixed %-7s ratio %.3f", res.Trace, res.BestFixed, res.Ratio)
		if res.Ratio <= 1.0 {
			wins++
		}
		if res.Ratio > 1.10 {
			t.Errorf("trace %s: adaptive regret is %.3fx the best fixed preset (%s)", res.Trace, res.Ratio, res.BestFixed)
		}
		if len(res.Rows) < 4 {
			t.Errorf("trace %s compared only %d models", res.Trace, len(res.Rows))
		}
	}
	if wins < 2 {
		t.Errorf("adaptive matched/beat the best fixed preset on %d traces, want ≥ 2", wins)
	}
}

// TestAdaptiveSweepDeterministic: same seed, same scoreboard — the sweep
// must be replayable for BENCH_adaptive.json diffs.
func TestAdaptiveSweepDeterministic(t *testing.T) {
	a := AdaptiveSweep(Options{Quick: true, Seed: 7})
	b := AdaptiveSweep(Options{Quick: true, Seed: 7})
	for i := range a {
		if a[i].Ratio != b[i].Ratio || a[i].BestFixedRegret != b[i].BestFixedRegret {
			t.Errorf("trace %s not deterministic: %+v vs %+v", a[i].Trace, a[i], b[i])
		}
	}
}
