// Package fixture seeds poolcheck's golden test: each function is one
// shape of the message-pool ownership discipline, with // want comments
// marking the expected diagnostics. Functions without want comments are
// false-positive regressions — clean idioms the analyzer must not flag.
package fixture

import (
	"github.com/fluentps/fluentps/internal/transport"
)

var ep transport.Endpoint

func leakNew() {
	m := transport.NewMessage() // want "pooled message "m" from transport.NewMessage is never released"
	m.Seq = 7
}

func leakRecv() {
	m, err := ep.Recv() // want "received message "m" is never released"
	if err != nil {
		return
	}
	_ = m.Seq
}

func useAfterRelease() {
	m := transport.NewMessage()
	transport.Release(m)
	m.Seq = 9 // want "use of message "m" after transport.Release released it"
}

func useAfterSendOwned() {
	m := transport.NewMessage()
	_ = transport.SendOwned(ep, m)
	_ = m.Seq // want "use of message "m" after transport.SendOwned released it"
}

func doubleRelease() {
	m := transport.NewMessage()
	transport.Release(m)
	transport.Release(m) // want "message "m" released twice"
}

func wrongReleaseOnReceived() {
	m, _ := ep.Recv()    // want "received message "m" is never released"
	transport.Release(m) // want "transport.Release is a no-op on received message "m""
}

func wrongReleaseReceivedOnNew() {
	m := transport.NewMessage()  // want "pooled message "m" from transport.NewMessage is never released"
	transport.ReleaseReceived(m) // want "transport.ReleaseReceived is a no-op on creator-owned message "m""
}

func sendRetainedKeepsOwnership() {
	m := transport.NewMessage() // want "pooled message "m" from transport.NewMessage is never released"
	_ = transport.SendRetained(ep, m)
}

// sendRetainedThenRelease keeps the discipline: a retained send is
// followed by an explicit release. No diagnostic.
func sendRetainedThenRelease() {
	m := transport.NewMessage()
	_ = transport.SendRetained(ep, m)
	transport.Release(m)
}

// releasedOnEveryBranch consumes the message on both arms. No diagnostic.
func releasedOnEveryBranch(cond bool) {
	m := transport.NewMessage()
	if cond {
		transport.Release(m)
	} else {
		_ = transport.SendOwned(ep, m)
	}
}

// deferredRelease is the canonical cleanup idiom. No diagnostic.
func deferredRelease() {
	m := transport.NewMessage()
	defer transport.Release(m)
	m.Seq = 3
}

// forwardReceived moves a received pointer downstream with SendOwned:
// ownership transfers, the forwarder owes no release. No diagnostic.
func forwardReceived() error {
	m, err := ep.Recv()
	if err != nil {
		return err
	}
	return transport.SendOwned(ep, m)
}

type holder struct{ m *transport.Message }

// Escapes hand ownership to another owner; the tracker must go quiet.

func escapeToStruct(h *holder) {
	m := transport.NewMessage()
	h.m = m
}

func escapeToChannel(ch chan *transport.Message) {
	m := transport.NewMessage()
	ch <- m
}

func escapeToReturn() *transport.Message {
	m := transport.NewMessage()
	return m
}

// escapeToFuncValue: calls through function values have no summary, so
// ownership conservatively transfers. No diagnostic.
var consumeFn func(*transport.Message)

func escapeToFuncValue() {
	m := transport.NewMessage()
	consumeFn(m)
}

// The interprocedural summaries see through module-local calls: helpers
// that only read, helpers that release, and helpers that construct.

// leakThroughReadOnlyHelper: inspect only reads its parameter, so the
// caller still owes the release — passing to it no longer launders
// ownership.
func leakThroughReadOnlyHelper() {
	m := transport.NewMessage() // want "pooled message "m" from transport.NewMessage is never released"
	inspect(m)
}

func inspect(m *transport.Message) { _ = m.Seq }

// releaseViaHelper: finish releases unconditionally, which counts as the
// caller's release. No diagnostic.
func releaseViaHelper() {
	m := transport.NewMessage()
	finish(m)
}

func finish(m *transport.Message) { transport.Release(m) }

// doubleReleaseViaHelper: the helper's release plus the caller's own is
// one too many.
func doubleReleaseViaHelper() {
	m := transport.NewMessage()
	finish(m)
	transport.Release(m) // want "message "m" released twice"
}

// wrongHelperOnReceived: a creator-release helper applied to a received
// message is a silent runtime no-op — and the message still leaks.
func wrongHelperOnReceived() {
	m, _ := ep.Recv() // want "received message "m" is never released"
	finish(m)         // want "finish \(which releases it\) is a no-op on received message "m""
}

// condReleaseHelperEscapes: maybeFinish releases on only one branch, so
// the summary refuses to certify either way and ownership conservatively
// transfers. No diagnostic at the caller.
func condReleaseHelperEscapes(cond bool) {
	m := transport.NewMessage()
	maybeFinish(m, cond)
}

func maybeFinish(m *transport.Message, cond bool) {
	if cond {
		transport.Release(m)
	}
}

// buildReply always returns a fresh creator-owned message; callers
// inherit the release obligation through the summary.
func buildReply() *transport.Message {
	m := transport.NewMessage()
	m.Seq = 1
	return m
}

func leakFromConstructorHelper() {
	m := buildReply() // want "pooled message "m" from transport.NewMessage is never released"
	_ = m.Seq
}

// releaseFromConstructorHelper pairs the helper with a release. No
// diagnostic.
func releaseFromConstructorHelper() {
	m := buildReply()
	transport.Release(m)
}

// pointerCompareAfterHandoff: identity tests never dereference, so
// comparing a handed-off message is legal. No diagnostic.
func pointerCompareAfterHandoff(other *transport.Message) bool {
	m := transport.NewMessage()
	_ = transport.SendOwned(ep, m)
	return m == other
}
