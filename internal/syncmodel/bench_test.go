package syncmodel

import (
	"math/rand"
	"testing"
)

// BenchmarkControllerBSPRound measures a full round of pushes + pulls
// through the controller for 32 workers.
func BenchmarkControllerBSPRound(b *testing.B) {
	const n = 32
	c := New(n, BSP(), Lazy, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for w := 0; w < n; w++ {
			c.OnPush(w, i)
		}
		for w := 0; w < n; w++ {
			c.OnPull(w, i, nil)
		}
	}
}

// BenchmarkControllerPSSP measures the probabilistic pull condition path.
func BenchmarkControllerPSSP(b *testing.B) {
	const n = 32
	c := New(n, PSSPConst(3, 0.5), SoftBarrier, rand.New(rand.NewSource(1)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for w := 0; w < n; w++ {
			c.OnPush(w, i)
		}
		for w := 0; w < n; w++ {
			c.OnPull(w, i, nil)
		}
	}
}

// BenchmarkLazyBufferChurn stresses buffering and release of DPRs.
func BenchmarkLazyBufferChurn(b *testing.B) {
	const n = 8
	c := New(n, SSP(1), Lazy, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Worker 0 sprints ahead and blocks; the rest close rounds.
		c.OnPush(0, 2*i)
		c.OnPull(0, 2*i, nil)
		c.OnPush(0, 2*i+1)
		c.OnPull(0, 2*i+1, nil)
		for w := 1; w < n; w++ {
			c.OnPush(w, 2*i)
			c.OnPull(w, 2*i, nil)
		}
		for w := 1; w < n; w++ {
			c.OnPush(w, 2*i+1)
			c.OnPull(w, 2*i+1, nil)
		}
	}
}
