package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/fluentps/fluentps/internal/keyrange"
	"github.com/fluentps/fluentps/internal/telemetry"
)

// muxPair wires a client and server session over an in-memory pipe and
// tears both down with the test.
func muxPair(t *testing.T, cfg MuxConfig) (*MuxSession, *MuxSession) {
	t.Helper()
	cc, sc := net.Pipe()
	client := NewMuxClient(cc, cfg)
	server := NewMuxServer(sc, cfg)
	t.Cleanup(func() {
		_ = client.Close()
		_ = server.Close()
	})
	return client, server
}

func muxMsg(seq uint64) *Message {
	return &Message{
		Type: MsgPullRO,
		From: Worker(3),
		To:   Server(0),
		Seq:  seq,
		View: 7,
		Keys: []keyrange.Key{1, 4},
		Vals: []float64{0.5, -2, 42},
	}
}

func TestMuxRoundTrip(t *testing.T) {
	client, server := muxPair(t, MuxConfig{})

	st, err := client.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Send(muxMsg(11)); err != nil {
		t.Fatal(err)
	}

	acc, err := server.AcceptStream()
	if err != nil {
		t.Fatal(err)
	}
	if acc.ID() != st.ID() {
		t.Fatalf("accepted stream id %d, opened %d", acc.ID(), st.ID())
	}
	got, err := acc.Recv()
	if err != nil {
		t.Fatal(err)
	}
	want := muxMsg(11)
	if got.Type != want.Type || got.Seq != want.Seq || got.View != want.View ||
		len(got.Keys) != 2 || got.Keys[1] != 4 || len(got.Vals) != 3 || got.Vals[2] != 42 {
		t.Fatalf("round-trip mangled the message: %+v", got)
	}
	ReleaseReceived(got)

	// And the response direction (uncredited).
	resp := &Message{Type: MsgPullROResp, To: Worker(3), Seq: 11, Vals: []float64{1}}
	if err := acc.Send(resp); err != nil {
		t.Fatal(err)
	}
	back, err := st.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if back.Type != MsgPullROResp || back.Seq != 11 {
		t.Fatalf("response mangled: %+v", back)
	}
	ReleaseReceived(back)
}

// Many concurrent streams on one session: every message arrives on the
// stream that sent it, in order.
func TestMuxConcurrentStreams(t *testing.T) {
	const streams, msgs = 8, 25
	client, server := muxPair(t, MuxConfig{})

	// Server: echo every message back on its own stream.
	go func() {
		for {
			st, err := server.AcceptStream()
			if err != nil {
				return
			}
			go func(st *MuxStream) {
				for {
					m, err := st.Recv()
					if err != nil {
						return
					}
					resp := &Message{Type: MsgPullROResp, Seq: m.Seq, Vals: append([]float64(nil), m.Vals...)}
					ReleaseReceived(m)
					if st.Send(resp) != nil {
						return
					}
				}
			}(st)
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, streams)
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := client.OpenStream()
			if err != nil {
				errs <- err
				return
			}
			for seq := uint64(1); seq <= msgs; seq++ {
				m := muxMsg(seq)
				m.Vals = []float64{float64(i), float64(seq)}
				if err := st.Send(m); err != nil {
					errs <- err
					return
				}
				r, err := st.Recv()
				if err != nil {
					errs <- err
					return
				}
				if r.Seq != seq || len(r.Vals) != 2 || r.Vals[0] != float64(i) || r.Vals[1] != float64(seq) {
					errs <- fmt.Errorf("stream %d: echo mismatch %+v at seq %d", i, r, seq)
					ReleaseReceived(r)
					return
				}
				ReleaseReceived(r)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// With a one-credit window, a second Send must block until the acceptor
// consumes the first message (returning the credit), and the wait must
// land in the stall histogram.
func TestMuxCreditBlocking(t *testing.T) {
	reg := telemetry.New()
	client, server := muxPair(t, MuxConfig{Window: 1, Telemetry: reg})

	st, err := client.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Send(muxMsg(1)); err != nil {
		t.Fatal(err)
	}
	acc, err := server.AcceptStream()
	if err != nil {
		t.Fatal(err)
	}

	sent2 := make(chan error, 1)
	go func() { sent2 <- st.Send(muxMsg(2)) }()
	select {
	case err := <-sent2:
		t.Fatalf("second send completed with the window empty (err=%v)", err)
	case <-time.After(30 * time.Millisecond):
	}

	m, err := acc.Recv() // consumes message 1, returns one credit
	if err != nil {
		t.Fatal(err)
	}
	ReleaseReceived(m)
	if err := <-sent2; err != nil {
		t.Fatalf("second send after credit return: %v", err)
	}
	m, err = acc.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Seq != 2 {
		t.Fatalf("got seq %d, want 2", m.Seq)
	}
	ReleaseReceived(m)
	if reg.Histogram("transport.stream_stall_ns").Count() == 0 {
		t.Error("blocked send recorded no stall sample")
	}
}

// At MaxStreams the acceptor answers new streams with muxReject; the
// initiator surfaces it as *MuxRejectedError carrying the backoff hint.
func TestMuxAdmissionReject(t *testing.T) {
	client, server := muxPair(t, MuxConfig{MaxStreams: 1, RetryAfter: 5 * time.Millisecond})

	st1, err := client.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	if err := st1.Send(muxMsg(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := server.AcceptStream(); err != nil {
		t.Fatal(err)
	}

	st2, err := client.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Send(muxMsg(2)); err != nil {
		t.Fatal(err)
	}
	_, err = st2.Recv()
	var rej *MuxRejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("Recv on rejected stream: %v, want *MuxRejectedError", err)
	}
	if rej.RetryAfter != 5*time.Millisecond {
		t.Fatalf("retry-after hint %v, want 5ms", rej.RetryAfter)
	}
	// The surviving stream still works.
	if err := st1.Send(muxMsg(3)); err != nil {
		t.Fatal(err)
	}
}

// Closing a stream reaches the peer, releases the admission slot, and
// returns the streams_active gauge to zero on both sides.
func TestMuxStreamClose(t *testing.T) {
	creg, sreg := telemetry.New(), telemetry.New()
	cc, sc := net.Pipe()
	client := NewMuxClient(cc, MuxConfig{MaxStreams: 1, Telemetry: creg})
	server := NewMuxServer(sc, MuxConfig{MaxStreams: 1, Telemetry: sreg})
	t.Cleanup(func() { _ = client.Close(); _ = server.Close() })

	st, err := client.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Send(muxMsg(1)); err != nil {
		t.Fatal(err)
	}
	acc, err := server.AcceptStream()
	if err != nil {
		t.Fatal(err)
	}
	m, err := acc.Recv()
	if err != nil {
		t.Fatal(err)
	}
	ReleaseReceived(m)

	_ = st.Close()
	if _, err := acc.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("peer Recv after close: %v, want ErrClosed", err)
	}
	// The slot freed: a new stream fits under MaxStreams=1 again.
	st2, err := client.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Send(muxMsg(2)); err != nil {
		t.Fatal(err)
	}
	acc2, err := server.AcceptStream()
	if err != nil {
		t.Fatal(err)
	}
	m, err = acc2.Recv()
	if err != nil {
		t.Fatal(err)
	}
	ReleaseReceived(m)
	_ = st2.Close()

	deadline := time.Now().Add(time.Second)
	for {
		if creg.Gauge("transport.streams_active").Value() == 0 &&
			sreg.Gauge("transport.streams_active").Value() <= 1 {
			// The server side drops its stream when the muxClose frame
			// arrives; allow it a moment.
			if sreg.Gauge("transport.streams_active").Value() == 0 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("streams_active did not drain: client=%d server=%d",
				creg.Gauge("transport.streams_active").Value(),
				sreg.Gauge("transport.streams_active").Value())
		}
		time.Sleep(time.Millisecond)
	}
}

// gatedConn blocks every Write until the gate opens, recording the
// stream ID of each frame written — the deterministic harness for the
// round-robin drain order.
type gatedConn struct {
	gate    chan struct{}
	entered chan struct{}
	done    chan struct{}
	once    sync.Once

	mu  sync.Mutex
	ids []uint32
}

func newGatedConn() *gatedConn {
	return &gatedConn{
		gate:    make(chan struct{}),
		entered: make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
}

func (c *gatedConn) Write(p []byte) (int, error) {
	select {
	case c.entered <- struct{}{}:
	default:
	}
	select {
	case <-c.gate:
	case <-c.done:
		return 0, io.ErrClosedPipe
	}
	c.mu.Lock()
	c.ids = append(c.ids, binary.LittleEndian.Uint32(p[4:8]))
	c.mu.Unlock()
	return len(p), nil
}

func (c *gatedConn) Read(p []byte) (int, error) {
	<-c.done
	return 0, io.EOF
}

func (c *gatedConn) Close() error {
	c.once.Do(func() { close(c.done) })
	return nil
}

// The writer drains ready streams round-robin: with the writer parked on
// a dummy frame, three frames queued on stream A and three on stream B
// must hit the wire interleaved A,B,A,B,A,B — one chatty stream cannot
// monopolize the connection.
func TestMuxRoundRobinDrain(t *testing.T) {
	conn := newGatedConn()
	sess := NewMuxClient(conn, MuxConfig{})
	t.Cleanup(func() { _ = sess.Close() })

	dummy, err := sess.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	if err := dummy.Send(muxMsg(0)); err != nil {
		t.Fatal(err)
	}
	<-conn.entered // writer is now parked inside Write with an empty ring

	a, err := sess.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sess.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := a.Send(muxMsg(seq)); err != nil {
			t.Fatal(err)
		}
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := b.Send(muxMsg(seq)); err != nil {
			t.Fatal(err)
		}
	}

	close(conn.gate)
	deadline := time.Now().Add(2 * time.Second)
	for {
		conn.mu.Lock()
		n := len(conn.ids)
		conn.mu.Unlock()
		if n >= 7 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d frames drained", n)
		}
		time.Sleep(time.Millisecond)
	}
	conn.mu.Lock()
	got := append([]uint32(nil), conn.ids...)
	conn.mu.Unlock()
	want := []uint32{dummy.ID(), a.ID(), b.ID(), a.ID(), b.ID(), a.ID(), b.ID()}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drain order %v, want %v (round-robin)", got, want)
		}
	}
}

// Session shutdown must unblock every waiter and leave no goroutines
// behind: the leakcheck discipline, asserted dynamically.
func TestMuxShutdownLeakFree(t *testing.T) {
	before := runtime.NumGoroutine()

	for i := 0; i < 5; i++ {
		client, server := muxPair(t, MuxConfig{Window: 1})
		var wg sync.WaitGroup
		st, err := client.OpenStream()
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Send(muxMsg(1)); err != nil {
			t.Fatal(err)
		}
		wg.Add(3)
		go func() { // blocked Recv on the client side
			defer wg.Done()
			for {
				m, err := st.Recv()
				if err != nil {
					return
				}
				ReleaseReceived(m)
			}
		}()
		go func() { // blocked Send (window exhausted, never credited)
			defer wg.Done()
			_ = st.Send(muxMsg(2))
		}()
		go func() { // blocked AcceptStream after the first
			defer wg.Done()
			for {
				if _, err := server.AcceptStream(); err != nil {
					return
				}
			}
		}()
		_ = client.Close()
		_ = server.Close()
		wg.Wait()
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after session shutdown",
				before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// A dead peer surfaces as an error on every API, not a hang.
func TestMuxPeerDisconnect(t *testing.T) {
	cc, sc := net.Pipe()
	client := NewMuxClient(cc, MuxConfig{})
	server := NewMuxServer(sc, MuxConfig{})
	t.Cleanup(func() { _ = client.Close() })

	st, err := client.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Send(muxMsg(1)); err != nil {
		t.Fatal(err)
	}
	acc, err := server.AcceptStream()
	if err != nil {
		t.Fatal(err)
	}
	m, err := acc.Recv()
	if err != nil {
		t.Fatal(err)
	}
	ReleaseReceived(m)

	_ = server.Close()
	if _, err := st.Recv(); err == nil {
		t.Fatal("Recv on a disconnected session returned a message")
	}
	if _, err := client.OpenStream(); err == nil {
		// OpenStream may still succeed before the failure propagates; a
		// Send on it must then fail once the session notices.
		deadline := time.Now().Add(2 * time.Second)
		for {
			st2, err := client.OpenStream()
			if err != nil {
				break
			}
			if err := st2.Send(muxMsg(9)); err != nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("session never observed the peer disconnect")
			}
			time.Sleep(time.Millisecond)
		}
	}
}
