package keyrange

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// skewedSizes mimics a CNN layout: many small conv-layer keys plus one
// dominant fully-connected key, the situation that breaks PS-Lite's
// default slicing.
func skewedSizes() []int {
	sizes := make([]int, 16)
	for i := range sizes {
		sizes[i] = 100
	}
	sizes[15] = 100000
	return sizes
}

func TestNewLayoutValidation(t *testing.T) {
	if _, err := NewLayout(nil); err == nil {
		t.Error("empty layout should error")
	}
	if _, err := NewLayout([]int{10, 0, 5}); err == nil {
		t.Error("zero-size key should error")
	}
	if _, err := NewLayout([]int{10, -1}); err == nil {
		t.Error("negative-size key should error")
	}
}

func TestLayoutOffsets(t *testing.T) {
	l := MustLayout([]int{3, 5, 2})
	if l.NumKeys() != 3 || l.TotalDim() != 10 {
		t.Fatalf("NumKeys=%d TotalDim=%d", l.NumKeys(), l.TotalDim())
	}
	wantOff := []int{0, 3, 8}
	for k := 0; k < 3; k++ {
		if l.KeyOffset(Key(k)) != wantOff[k] {
			t.Errorf("offset[%d] = %d, want %d", k, l.KeyOffset(Key(k)), wantOff[k])
		}
	}
	vec := make([]float64, 10)
	for i := range vec {
		vec[i] = float64(i)
	}
	s := l.Slice(vec, 1)
	if len(s) != 5 || s[0] != 3 || s[4] != 7 {
		t.Errorf("Slice(vec,1) = %v", s)
	}
}

func TestMustLayoutPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustLayout should panic on invalid sizes")
		}
	}()
	MustLayout([]int{})
}

func TestDefaultSlicingContiguousAndComplete(t *testing.T) {
	l := MustLayout(skewedSizes())
	a, err := DefaultSlicing(l, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumServers() != 4 {
		t.Fatalf("NumServers = %d", a.NumServers())
	}
	// Contiguity: server id must be non-decreasing over keys.
	prev := 0
	for k := 0; k < l.NumKeys(); k++ {
		s := a.ServerOf(Key(k))
		if s < prev {
			t.Fatalf("default slicing not contiguous at key %d", k)
		}
		prev = s
	}
	// Every server gets 4 of the 16 keys.
	for m := 0; m < 4; m++ {
		if got := len(a.KeysOf(m)); got != 4 {
			t.Errorf("server %d has %d keys, want 4", m, got)
		}
	}
}

func TestDefaultSlicingIsImbalancedOnSkew(t *testing.T) {
	l := MustLayout(skewedSizes())
	a, err := DefaultSlicing(l, 4)
	if err != nil {
		t.Fatal(err)
	}
	if imb := a.Imbalance(l); imb < 3.5 {
		t.Errorf("expected severe imbalance under skew, got %.2f", imb)
	}
}

func TestEPSBalancesSkew(t *testing.T) {
	l := MustLayout(skewedSizes())
	a, err := EPS(l, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The single huge key dominates: optimal max load is 100000. LPT
	// guarantees within 4/3 of optimal, and here achieves exactly optimal.
	loads := a.Loads(l)
	maxLoad := 0
	for _, ld := range loads {
		if ld > maxLoad {
			maxLoad = ld
		}
	}
	if maxLoad != 100000 {
		t.Errorf("EPS max load = %d, want 100000 (the unavoidable huge key)", maxLoad)
	}
}

func TestEPSBeatsDefaultOnUniformRandomSizes(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		sizes := make([]int, 32)
		for i := range sizes {
			sizes[i] = 1 + r.Intn(10000)
		}
		l := MustLayout(sizes)
		def, _ := DefaultSlicing(l, 8)
		eps, _ := EPS(l, 8)
		if eps.Imbalance(l) > def.Imbalance(l)+1e-9 {
			t.Errorf("trial %d: EPS imbalance %.3f worse than default %.3f",
				trial, eps.Imbalance(l), def.Imbalance(l))
		}
	}
}

func TestSlicingErrors(t *testing.T) {
	l := MustLayout([]int{1, 2, 3})
	if _, err := DefaultSlicing(l, 0); err == nil {
		t.Error("DefaultSlicing with 0 servers should error")
	}
	if _, err := EPS(l, -1); err == nil {
		t.Error("EPS with negative servers should error")
	}
}

func TestSingleServerAssignsEverything(t *testing.T) {
	l := MustLayout(skewedSizes())
	for _, mk := range []func(*Layout, int) (*Assignment, error){DefaultSlicing, EPS} {
		a, err := mk(l, 1)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < l.NumKeys(); k++ {
			if a.ServerOf(Key(k)) != 0 {
				t.Fatalf("key %d not on server 0", k)
			}
		}
		if a.Imbalance(l) != 1 {
			t.Errorf("single server imbalance = %v, want 1", a.Imbalance(l))
		}
	}
}

func TestMoreServersThanKeys(t *testing.T) {
	l := MustLayout([]int{5, 5})
	a, err := EPS(l, 8)
	if err != nil {
		t.Fatal(err)
	}
	loads := a.Loads(l)
	nonzero := 0
	for _, ld := range loads {
		if ld > 0 {
			nonzero++
		}
	}
	if nonzero != 2 {
		t.Errorf("expected exactly 2 loaded servers, got %d", nonzero)
	}
}

func TestRebalanceMovesOnlyOrphans(t *testing.T) {
	l := MustLayout(skewedSizes())
	a, _ := EPS(l, 4)
	alive := []bool{true, true, false, true}
	b, err := Rebalance(a, l, alive)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < l.NumKeys(); k++ {
		oldS, newS := a.ServerOf(Key(k)), b.ServerOf(Key(k))
		if alive[oldS] && newS != oldS {
			t.Errorf("key %d moved from alive server %d to %d", k, oldS, newS)
		}
		if !alive[newS] {
			t.Errorf("key %d assigned to dead server %d", k, newS)
		}
	}
	if Moved(a, b) != len(a.KeysOf(2)) {
		t.Errorf("Moved = %d, want %d (exactly the dead server's keys)", Moved(a, b), len(a.KeysOf(2)))
	}
}

func TestRebalanceErrors(t *testing.T) {
	l := MustLayout([]int{1, 2})
	a, _ := EPS(l, 2)
	if _, err := Rebalance(a, l, []bool{true}); err == nil {
		t.Error("wrong-length alive should error")
	}
	if _, err := Rebalance(a, l, []bool{false, false}); err == nil {
		t.Error("all-dead should error")
	}
}

func TestRebalanceNoOpWhenAllAlive(t *testing.T) {
	l := MustLayout(skewedSizes())
	a, _ := EPS(l, 4)
	b, err := Rebalance(a, l, []bool{true, true, true, true})
	if err != nil {
		t.Fatal(err)
	}
	if Moved(a, b) != 0 {
		t.Errorf("rebalance with all alive moved %d keys", Moved(a, b))
	}
}

// Property: every key is assigned to a valid server and total load is
// preserved, for both slicers and arbitrary layouts.
func TestSlicingProperties(t *testing.T) {
	f := func(rawSizes []uint16, rawServers uint8) bool {
		sizes := make([]int, 0, len(rawSizes))
		for _, s := range rawSizes {
			if s > 0 {
				sizes = append(sizes, int(s))
			}
		}
		if len(sizes) == 0 {
			return true
		}
		servers := int(rawServers%16) + 1
		l := MustLayout(sizes)
		for _, mk := range []func(*Layout, int) (*Assignment, error){DefaultSlicing, EPS} {
			a, err := mk(l, servers)
			if err != nil {
				return false
			}
			sum := 0
			for _, ld := range a.Loads(l) {
				sum += ld
			}
			if sum != l.TotalDim() {
				return false
			}
			for k := 0; k < l.NumKeys(); k++ {
				s := a.ServerOf(Key(k))
				if s < 0 || s >= servers {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: EPS max load never exceeds 4/3·OPT + largest key bound; we use
// the weaker, always-valid bound max ≤ total/servers + maxKey.
func TestEPSLoadBoundProperty(t *testing.T) {
	f := func(rawSizes []uint16, rawServers uint8) bool {
		sizes := make([]int, 0, len(rawSizes))
		maxKey := 0
		for _, s := range rawSizes {
			if s > 0 {
				sizes = append(sizes, int(s))
				if int(s) > maxKey {
					maxKey = int(s)
				}
			}
		}
		if len(sizes) == 0 {
			return true
		}
		servers := int(rawServers%8) + 1
		l := MustLayout(sizes)
		a, err := EPS(l, servers)
		if err != nil {
			return false
		}
		bound := l.TotalDim()/servers + maxKey
		for _, ld := range a.Loads(l) {
			if ld > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
