package sim

import (
	"reflect"
	"testing"
)

// scnReadCell is a small fan-out cell: 8 trainers plus a read tier.
func scnReadCell(readers int) Scenario {
	sc := scnBase()
	sc.Name = "read-cell"
	sc.Workers = 8
	sc.Readers = readers
	sc.ReadEvery = 0.1
	return sc
}

// TestScenarioReadTier runs a cell with read-only clients and checks the
// tier's scorecard: pulls were answered from published snapshots, every
// rank published at least its boot snapshot, and the training invariants
// still hold with readers attached.
func TestScenarioReadTier(t *testing.T) {
	res, err := RunScenario(scnReadCell(6))
	if err != nil {
		t.Fatal(err)
	}
	if !res.ExactlyOnce {
		t.Fatalf("exactly-once violated: %s", res.ExactlyOnceErr)
	}
	if !res.VTrainMonotone {
		t.Fatal("V_train monotonicity violated")
	}
	if res.Readers != 6 {
		t.Fatalf("Readers = %d, want 6", res.Readers)
	}
	// 6 open-loop readers at ~10 pulls/s over a 10s budget: hundreds of
	// pulls even after in-flight losses at the budget edge.
	if res.ROPulls < 100 {
		t.Fatalf("ROPulls = %d, want ≥ 100", res.ROPulls)
	}
	// Boot snapshots alone give one per rank; training advances V_train,
	// so the every-tick default must republish many times.
	if res.ROSnapshots <= res.Servers {
		t.Fatalf("ROSnapshots = %d, want > %d boot snapshots", res.ROSnapshots, res.Servers)
	}
	if res.ROMaxLagV < 0 {
		t.Fatalf("ROMaxLagV = %d, want ≥ 0", res.ROMaxLagV)
	}
}

// TestScenarioReadTierDeterministic: the same read cell twice is
// bit-identical, counters included.
func TestScenarioReadTierDeterministic(t *testing.T) {
	a, err := RunScenario(scnReadCell(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario(scnReadCell(4))
	if err != nil {
		t.Fatal(err)
	}
	if a.ROPulls != b.ROPulls || a.ROSnapshots != b.ROSnapshots || a.ROMaxLagV != b.ROMaxLagV {
		t.Fatalf("read-tier counters differ across identical runs: %d/%d/%d vs %d/%d/%d",
			a.ROPulls, a.ROSnapshots, a.ROMaxLagV, b.ROPulls, b.ROSnapshots, b.ROMaxLagV)
	}
	if !reflect.DeepEqual(a.FinalParams, b.FinalParams) {
		t.Fatal("final parameters differ across identical runs")
	}
}

// TestScenarioReadTierIsolation is the load-bearing property of the RO
// path: readers never touch the sync machinery, so attaching them must
// leave the training trajectory bit-identical — same updates, same
// V_train trace, same final parameters.
func TestScenarioReadTierIsolation(t *testing.T) {
	with, err := RunScenario(scnReadCell(6))
	if err != nil {
		t.Fatal(err)
	}
	without, err := RunScenario(scnReadCell(0))
	if err != nil {
		t.Fatal(err)
	}
	if with.Updates != without.Updates {
		t.Fatalf("readers changed the update count: %d vs %d", with.Updates, without.Updates)
	}
	if !reflect.DeepEqual(with.VTrainTrace, without.VTrainTrace) {
		t.Fatal("readers changed the V_train trace")
	}
	if !reflect.DeepEqual(with.FinalParams, without.FinalParams) {
		t.Fatal("readers changed the final parameters")
	}
	if without.ROPulls != 0 || without.ROSnapshots != 0 {
		t.Fatalf("reader-free cell recorded read-tier activity: %d pulls, %d snapshots",
			without.ROPulls, without.ROSnapshots)
	}
}

// TestScenarioReadTierFrozen: SnapshotEvery < 0 never republishes, so
// readers only ever see the per-rank boot snapshot — and pulls still
// succeed, because serving is decoupled from publishing.
func TestScenarioReadTierFrozen(t *testing.T) {
	sc := scnReadCell(3)
	sc.SnapshotEvery = -1
	res, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.ROSnapshots != res.Servers {
		t.Fatalf("ROSnapshots = %d, want exactly %d boot snapshots", res.ROSnapshots, res.Servers)
	}
	if res.ROPulls < 50 {
		t.Fatalf("ROPulls = %d, want ≥ 50", res.ROPulls)
	}
	// The frozen snapshot's staleness grows with every clock tick, so the
	// observed lag must be substantial by the end of the budget.
	if res.ROMaxLagV < 1 {
		t.Fatalf("ROMaxLagV = %d, want ≥ 1 with a frozen snapshot", res.ROMaxLagV)
	}
}

// TestScenarioReadTierFailover: a permanent kill with readers attached —
// the promoted incarnation publishes a fresh boot snapshot and keeps
// serving, and the training invariants survive.
func TestScenarioReadTierFailover(t *testing.T) {
	sc := scnReadCell(4)
	sc.Replicas = 2
	sc.Hazards.Failures = []ServerFailure{{Server: 0, KillAt: 4}}
	res, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ExactlyOnce {
		t.Fatalf("exactly-once violated: %s", res.ExactlyOnceErr)
	}
	if !res.VTrainMonotone {
		t.Fatal("V_train monotonicity violated")
	}
	if res.Promotions != 1 {
		t.Fatalf("Promotions = %d, want 1", res.Promotions)
	}
	if res.ROPulls < 50 {
		t.Fatalf("ROPulls = %d, want ≥ 50 across the failover", res.ROPulls)
	}
}
