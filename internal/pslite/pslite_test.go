package pslite

import (
	"testing"
	"time"

	"github.com/fluentps/fluentps/internal/dataset"
	"github.com/fluentps/fluentps/internal/keyrange"
	"github.com/fluentps/fluentps/internal/mlmodel"
	"github.com/fluentps/fluentps/internal/optimizer"
	"github.com/fluentps/fluentps/internal/transport"
)

func TestSyncModeStrings(t *testing.T) {
	if BSP().String() != "BSP" || ASP().String() != "ASP" || BoundedDelay(3).String() != "BoundedDelay(3)" {
		t.Error("mode names wrong")
	}
}

func TestSchedulerValidation(t *testing.T) {
	net := transport.NewChanNetwork(4)
	if _, err := NewScheduler(net.Endpoint(transport.Worker(0)), 2, BSP()); err == nil {
		t.Error("non-scheduler endpoint accepted")
	}
	if _, err := NewScheduler(net.Endpoint(transport.Scheduler()), 0, BSP()); err == nil {
		t.Error("zero workers accepted")
	}
}

func TestServerValidation(t *testing.T) {
	layout := keyrange.MustLayout([]int{4})
	assign, _ := keyrange.DefaultSlicing(layout, 1)
	net := transport.NewChanNetwork(4)
	if _, err := NewServer(net.Endpoint(transport.Worker(0)), 0, 2, layout, assign, nil); err == nil {
		t.Error("mismatched endpoint accepted")
	}
	if _, err := NewServer(net.Endpoint(transport.Server(0)), 0, 0, layout, assign, nil); err == nil {
		t.Error("zero workers accepted")
	}
}

// startScheduler runs a scheduler and returns a shutdown func.
func startScheduler(t *testing.T, net *transport.ChanNetwork, workers int, mode SyncMode) *Scheduler {
	t.Helper()
	sched, err := NewScheduler(net.Endpoint(transport.Scheduler()), workers, mode)
	if err != nil {
		t.Fatal(err)
	}
	go sched.Run()
	t.Cleanup(func() {
		ep := net.Endpoint(transport.Worker(90))
		_ = ep.Send(&transport.Message{Type: transport.MsgShutdown, To: transport.Scheduler()})
		ep.Close()
	})
	return sched
}

func TestBSPBarrierBlocksUntilAllReport(t *testing.T) {
	net := transport.NewChanNetwork(32)
	sched := startScheduler(t, net, 2, BSP())
	layout := keyrange.MustLayout([]int{4})
	assign, _ := keyrange.DefaultSlicing(layout, 1)
	w0, _ := NewWorker(net.Endpoint(transport.Worker(0)), 0, layout, assign)
	w1, _ := NewWorker(net.Endpoint(transport.Worker(1)), 1, layout, assign)
	defer w0.Close()
	defer w1.Close()

	done := make(chan error, 1)
	go func() { done <- w0.Barrier(0) }()
	select {
	case <-done:
		t.Fatal("barrier released before all workers reported")
	case <-time.After(50 * time.Millisecond):
	}
	if err := w1.Barrier(0); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("barrier never released")
	}
	if sched.Barriers() != 2 {
		t.Errorf("barriers = %d, want 2", sched.Barriers())
	}
}

func TestBoundedDelayAllowsLead(t *testing.T) {
	net := transport.NewChanNetwork(32)
	startScheduler(t, net, 2, BoundedDelay(2))
	layout := keyrange.MustLayout([]int{4})
	assign, _ := keyrange.DefaultSlicing(layout, 1)
	w0, _ := NewWorker(net.Endpoint(transport.Worker(0)), 0, layout, assign)
	w1, _ := NewWorker(net.Endpoint(transport.Worker(1)), 1, layout, assign)
	defer w0.Close()
	defer w1.Close()

	// Worker 1 reports iteration 0 once; worker 0 may then run ahead to
	// iteration 2 (progress - delay = 0 ≤ min progress 0) without blocking.
	if err := w1.Barrier(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= 2; i++ {
		done := make(chan error, 1)
		go func(i int) { done <- w0.Barrier(i) }(i)
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("bounded-delay barrier blocked at lead %d", i)
		}
	}
	// Iteration 3 exceeds the delay: must block until worker 1 advances.
	done := make(chan error, 1)
	go func() { done <- w0.Barrier(3) }()
	select {
	case <-done:
		t.Fatal("barrier released beyond the delay bound")
	case <-time.After(50 * time.Millisecond):
	}
	if err := w1.Barrier(1); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("barrier never released after straggler advanced")
	}
}

func TestASPNeverBlocks(t *testing.T) {
	net := transport.NewChanNetwork(32)
	startScheduler(t, net, 4, ASP())
	layout := keyrange.MustLayout([]int{4})
	assign, _ := keyrange.DefaultSlicing(layout, 1)
	w, _ := NewWorker(net.Endpoint(transport.Worker(0)), 0, layout, assign)
	defer w.Close()
	for i := 0; i < 10; i++ {
		done := make(chan error, 1)
		go func(i int) { done <- w.Barrier(i) }(i)
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("ASP barrier blocked at iteration %d", i)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(ClusterConfig{}); err == nil {
		t.Error("empty config accepted")
	}
}

func TestRunBSPTrains(t *testing.T) {
	train, test := dataset.CIFAR10Like(51)
	model, err := mlmodel.NewSoftmax(10, train.Dim, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ClusterConfig{
		Workers:      4,
		Servers:      2,
		Model:        model,
		Train:        train,
		Test:         test,
		Mode:         BSP(),
		NewOptimizer: func() optimizer.Optimizer { return &optimizer.SGD{LR: 0.1} },
		BatchSize:    16,
		Iters:        200,
		Seed:         9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAcc < 0.5 {
		t.Errorf("PS-Lite BSP accuracy %.3f, want ≥ 0.5", res.FinalAcc)
	}
	// One barrier per worker per iteration except the last.
	want := 4 * 199
	if res.Barriers != want {
		t.Errorf("barriers = %d, want %d", res.Barriers, want)
	}
}

func TestRunBoundedDelayAndASPTrain(t *testing.T) {
	train, test := dataset.CIFAR10Like(52)
	model, _ := mlmodel.NewSoftmax(10, train.Dim, nil)
	for _, mode := range []SyncMode{BoundedDelay(3), ASP()} {
		res, err := Run(ClusterConfig{
			Workers:      3,
			Servers:      2,
			Model:        model,
			Train:        train,
			Test:         test,
			Mode:         mode,
			NewOptimizer: func() optimizer.Optimizer { return &optimizer.SGD{LR: 0.1} },
			BatchSize:    16,
			Iters:        150,
			Seed:         9,
		})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if res.FinalAcc < 0.3 {
			t.Errorf("%s accuracy %.3f", mode, res.FinalAcc)
		}
	}
}
