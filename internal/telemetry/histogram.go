package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the fixed bucket count of every Histogram. Bucket i
// counts observations whose nanosecond value has bit length i, i.e. the
// range [2^(i-1), 2^i); bucket 0 holds exact zeros. 2^46 ns ≈ 19.5 hours,
// so the last bucket is an effective catch-all for any latency a
// parameter server could produce.
const NumBuckets = 48

// Histogram is a lock-free latency histogram with fixed log2-spaced
// buckets. Observe costs three atomic adds and never allocates; the
// bucket index is a single bits.Len64. The zero value is ready to use; a
// nil *Histogram discards all observations.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64 // nanoseconds
	buckets [NumBuckets]atomic.Uint64
}

// Observe records one duration. Negative durations (clock weirdness on a
// suspended machine) are clamped to zero rather than corrupting a bucket
// index.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	i := bits.Len64(uint64(ns))
	if i >= NumBuckets {
		i = NumBuckets - 1
	}
	h.count.Add(1)
	h.sum.Add(ns)
	h.buckets[i].Add(1)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// BucketUpperBound returns the inclusive nanosecond upper bound of bucket
// i: the largest value with bit length i.
func BucketUpperBound(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return int64(^uint64(0) >> 1)
	}
	return int64(uint64(1)<<uint(i)) - 1
}

// BucketCount is one non-empty histogram bucket in a snapshot: Le is the
// bucket's inclusive nanosecond upper bound.
type BucketCount struct {
	Le    int64  `json:"le_ns"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is a consistent-enough copy of a histogram: buckets
// are read individually, so a snapshot taken under concurrent Observe
// calls may be off by the observations in flight — fine for monitoring.
type HistogramSnapshot struct {
	Count   uint64        `json:"count"`
	Sum     int64         `json:"sum_ns"`
	P50     int64         `json:"p50_ns"`
	P99     int64         `json:"p99_ns"`
	Max     int64         `json:"max_ns"` // upper bound of the highest non-empty bucket
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's current state, keeping only non-empty
// buckets and annotating approximate p50/p99 (each quantile is resolved
// to its bucket's upper bound).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	var s HistogramSnapshot
	var counts [NumBuckets]uint64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		s.Count += counts[i]
	}
	s.Sum = h.sum.Load()
	if s.Count == 0 {
		return s
	}
	p50target := (s.Count + 1) / 2
	p99target := s.Count - s.Count/100
	var cum uint64
	for i, n := range counts {
		if n == 0 {
			continue
		}
		ub := BucketUpperBound(i)
		s.Buckets = append(s.Buckets, BucketCount{Le: ub, Count: n})
		if cum < p50target && cum+n >= p50target {
			s.P50 = ub
		}
		if cum < p99target && cum+n >= p99target {
			s.P99 = ub
		}
		cum += n
		s.Max = ub
	}
	return s
}

// Quantile returns the approximate q-quantile (q in [0,1]) as a duration:
// the upper bound of the bucket the quantile falls in, 0 when empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	var counts [NumBuckets]uint64
	var total uint64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(total))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, n := range counts {
		cum += n
		if cum >= target {
			return time.Duration(BucketUpperBound(i))
		}
	}
	return time.Duration(BucketUpperBound(NumBuckets - 1))
}
