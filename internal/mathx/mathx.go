// Package mathx provides small numeric helpers shared across the
// repository: numerically stable activation functions, summary statistics,
// and deterministic named random-number streams.
//
// Everything in this package is pure and allocation-conscious; hot paths
// (softmax, dot products) are written to be inlinable and to reuse caller
// buffers.
package mathx

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
)

// Sigmoid returns 1/(1+e^-x) computed in a numerically stable way for
// large-magnitude inputs.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}

// Softmax writes the softmax of logits into out (which must have the same
// length) and returns out. It subtracts the maximum logit before
// exponentiating so the result is stable for large logits.
func Softmax(logits, out []float64) []float64 {
	if len(out) != len(logits) {
		panic(fmt.Sprintf("mathx: softmax length mismatch %d != %d", len(out), len(logits)))
	}
	maxv := math.Inf(-1)
	for _, v := range logits {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for i, v := range logits {
		e := math.Exp(v - maxv)
		out[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range out {
		out[i] *= inv
	}
	return out
}

// Dot returns the inner product of a and b, which must have equal length.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mathx: dot length mismatch %d != %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Axpy computes y += alpha*x element-wise. x and y must have equal length.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mathx: axpy length mismatch %d != %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies every element of v by alpha in place.
func Scale(alpha float64, v []float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// ArgMax returns the index of the largest element of v, or -1 if v is empty.
func ArgMax(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best, bi := v[0], 0
	for i, x := range v[1:] {
		if x > best {
			best, bi = x, i+1
		}
	}
	return bi
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// RNG returns a deterministic random stream derived from a base seed and a
// stream name. Distinct names yield independent streams, so simulator
// components (compute noise, network noise, PSSP coin flips, data
// shuffling) can each consume randomness without perturbing one another —
// adding a draw in one component never changes another component's
// sequence.
func RNG(seed int64, name string) *rand.Rand {
	h := fnv.New64a()
	// fnv never returns an error.
	_, _ = h.Write([]byte(name))
	return rand.New(rand.NewSource(seed ^ int64(h.Sum64())))
}

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
	P95    float64
}

// Summarize computes summary statistics of xs. It returns a zero Summary
// for an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	s.P95 = Quantile(sorted, 0.95)
	return s
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of an already-sorted
// sample using linear interpolation between closest ranks.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := Clamp(q, 0, 1) * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// LogNormal draws a log-normally distributed value such that the result has
// the given mean and the given coefficient of variation (std/mean). A cv of
// zero returns mean exactly.
func LogNormal(r *rand.Rand, mean, cv float64) float64 {
	if mean <= 0 {
		return 0
	}
	if cv <= 0 {
		return mean
	}
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(mean) - sigma2/2
	return math.Exp(mu + math.Sqrt(sigma2)*r.NormFloat64())
}
