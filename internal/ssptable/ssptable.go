// Package ssptable implements the Bösen/SSPtable-style baseline (Ho et
// al., NIPS'13; Wei et al., SoCC'15) that the paper's Fig 1 and Fig 7
// compare against: a shared-memory parameter table with client-side
// caches invalidated by a vector clock.
//
// Semantics reproduced faithfully:
//
//   - A worker reads through its cache: the cached copy is reused as long
//     as its version is within the staleness threshold s of the reader's
//     iteration, so reads are routinely up to s rounds stale even with no
//     stragglers (unlike FluentPS's per-iteration pulls).
//   - When the cache is too old the worker blocks until the table clock —
//     the minimum committed iteration across all workers — catches up,
//     then refreshes (the SSP soft barrier).
//   - Updates are applied to the table raw, as Bösen's Inc does. Scaling
//     by 1/N was the application's job, and the PMLS-Caffe runs in the
//     paper's Fig 1 clearly did not do it: with per-worker learning rates
//     tuned at small N, the aggregate step grows ∝N and training collapses
//     for N ≥ 8 — exactly the curve Fig 1 shows. Algorithm 1 of FluentPS
//     bakes the g/N scaling into the server instead. Set ScaleUpdates to
//     true to get the corrected behaviour.
package ssptable

import (
	"fmt"
	"sync"
)

// Config parameterizes a Table.
type Config struct {
	Workers   int
	Staleness int
	// ScaleUpdates divides every pushed delta by Workers (FluentPS-style
	// aggregation). False reproduces Bösen's raw Inc.
	ScaleUpdates bool
}

// Stats counts table activity.
type Stats struct {
	CacheHits int // reads served from the worker cache
	Refreshes int // reads that fetched fresh parameters
	Blocks    int // refreshes that had to wait for the clock (soft barriers)
}

// Table is the shared parameter table.
type Table struct {
	mu   sync.Mutex
	cond *sync.Cond
	cfg  Config

	params    []float64
	committed []int // per-worker committed iterations
	clock     int   // min(committed): fully committed rounds

	stats Stats
}

// New creates a table initialized to w0.
func New(cfg Config, w0 []float64) (*Table, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("ssptable: need at least one worker, got %d", cfg.Workers)
	}
	if cfg.Staleness < 0 {
		return nil, fmt.Errorf("ssptable: staleness must be non-negative, got %d", cfg.Staleness)
	}
	if len(w0) == 0 {
		return nil, fmt.Errorf("ssptable: empty initial parameters")
	}
	t := &Table{
		cfg:       cfg,
		params:    append([]float64(nil), w0...),
		committed: make([]int, cfg.Workers),
	}
	t.cond = sync.NewCond(&t.mu)
	return t, nil
}

// Cache is one worker's cached copy of the table.
type Cache struct {
	params  []float64
	version int
}

// NewCache returns a cache pre-filled with the table's initial contents
// at version 0.
func (t *Table) NewCache() *Cache {
	t.mu.Lock()
	defer t.mu.Unlock()
	return &Cache{params: append([]float64(nil), t.params...), version: t.clock}
}

// Inc applies a delta to the table (Bösen's Inc): w += delta, or
// w += delta/N when ScaleUpdates is set.
func (t *Table) Inc(delta []float64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(delta) != len(t.params) {
		return fmt.Errorf("ssptable: delta has %d scalars, table has %d", len(delta), len(t.params))
	}
	scale := 1.0
	if t.cfg.ScaleUpdates {
		scale = 1 / float64(t.cfg.Workers)
	}
	for i, d := range delta {
		t.params[i] += scale * d
	}
	return nil
}

// Clock marks one more iteration committed by the worker and advances the
// table clock when the global minimum rises.
func (t *Table) Clock(worker int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if worker < 0 || worker >= t.cfg.Workers {
		return fmt.Errorf("ssptable: worker %d out of range", worker)
	}
	t.committed[worker]++
	minC := t.committed[0]
	for _, c := range t.committed[1:] {
		if c < minC {
			minC = c
		}
	}
	if minC > t.clock {
		t.clock = minC
		t.cond.Broadcast()
	}
	return nil
}

// Get reads the parameters a worker uses for iteration iter into dst,
// via the SSPtable protocol: reuse the cache while version ≥ iter−s;
// otherwise block until clock ≥ iter−s and refresh.
func (t *Table) Get(c *Cache, iter int, dst []float64) error {
	if len(dst) != len(c.params) {
		return fmt.Errorf("ssptable: dst has %d slots, cache has %d", len(dst), len(c.params))
	}
	if c.version >= iter-t.cfg.Staleness {
		t.mu.Lock()
		t.stats.CacheHits++
		t.mu.Unlock()
		copy(dst, c.params)
		return nil
	}
	t.mu.Lock()
	if t.clock < iter-t.cfg.Staleness {
		t.stats.Blocks++
		for t.clock < iter-t.cfg.Staleness {
			t.cond.Wait()
		}
	}
	t.stats.Refreshes++
	copy(c.params, t.params)
	c.version = t.clock
	t.mu.Unlock()
	copy(dst, c.params)
	return nil
}

// Snapshot copies the current table contents (for evaluation).
func (t *Table) Snapshot() []float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]float64(nil), t.params...)
}

// ClockValue returns the current vector-clock minimum.
func (t *Table) ClockValue() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.clock
}

// Stats returns a snapshot of the table's counters.
func (t *Table) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}
