// Package kvstore holds parameter state for servers and workers.
//
// A Shard is one server's slice of the global model: the segments of the
// flat parameter vector belonging to the keys assigned to that server, with
// per-key update counters. Shards are owned by a single goroutine (the
// server's message loop or the simulator); they are deliberately unlocked.
//
// Gather and Scatter convert between a worker's flat model vector and the
// concatenated per-key payloads that travel in push/pull messages.
package kvstore

import (
	"fmt"

	"github.com/fluentps/fluentps/internal/keyrange"
	"github.com/fluentps/fluentps/internal/mathx"
)

// Shard stores the parameter segments for one server's keys.
type Shard struct {
	layout  *keyrange.Layout
	keys    []keyrange.Key
	data    map[keyrange.Key][]float64
	updates map[keyrange.Key]uint64
}

// NewShard creates a shard for the given keys. If init is non-nil it is
// called once per key to fill the segment's initial values (e.g. to copy
// w0); otherwise segments start at zero.
func NewShard(layout *keyrange.Layout, keys []keyrange.Key, init func(k keyrange.Key, seg []float64)) *Shard {
	s := &Shard{
		layout:  layout,
		keys:    append([]keyrange.Key(nil), keys...),
		data:    make(map[keyrange.Key][]float64, len(keys)),
		updates: make(map[keyrange.Key]uint64, len(keys)),
	}
	for _, k := range s.keys {
		seg := make([]float64, layout.KeySize(k))
		if init != nil {
			init(k, seg)
		}
		s.data[k] = seg
	}
	return s
}

// Keys returns the keys this shard owns (shared slice; do not mutate).
func (s *Shard) Keys() []keyrange.Key { return s.keys }

// Dim returns the total number of scalars stored in the shard.
func (s *Shard) Dim() int {
	d := 0
	for _, k := range s.keys {
		d += s.layout.KeySize(k)
	}
	return d
}

// Has reports whether the shard owns key k.
func (s *Shard) Has(k keyrange.Key) bool {
	_, ok := s.data[k]
	return ok
}

// Segment returns the live segment for key k. The caller must not hold the
// returned slice across shard mutations it does not control; use ReadInto
// for a copy.
func (s *Shard) Segment(k keyrange.Key) ([]float64, error) {
	seg, ok := s.data[k]
	if !ok {
		return nil, fmt.Errorf("kvstore: shard does not own key %d", k)
	}
	return seg, nil
}

// ReadInto copies key k's segment into dst and returns the number of
// scalars copied. dst must be at least the key's size.
func (s *Shard) ReadInto(k keyrange.Key, dst []float64) (int, error) {
	seg, ok := s.data[k]
	if !ok {
		return 0, fmt.Errorf("kvstore: shard does not own key %d", k)
	}
	if len(dst) < len(seg) {
		return 0, fmt.Errorf("kvstore: dst has %d slots for key %d of size %d", len(dst), k, len(seg))
	}
	return copy(dst, seg), nil
}

// ApplyGrad performs w_k += scale · grad for key k (Algorithm 1 line 15
// uses scale = 1/N). grad must have exactly the key's size.
func (s *Shard) ApplyGrad(k keyrange.Key, grad []float64, scale float64) error {
	seg, ok := s.data[k]
	if !ok {
		return fmt.Errorf("kvstore: shard does not own key %d", k)
	}
	if len(grad) != len(seg) {
		return fmt.Errorf("kvstore: gradient for key %d has %d scalars, want %d", k, len(grad), len(seg))
	}
	mathx.Axpy(scale, grad, seg)
	s.updates[k]++
	return nil
}

// Set overwrites key k's segment (used for rebalance handoff).
func (s *Shard) Set(k keyrange.Key, vals []float64) error {
	seg, ok := s.data[k]
	if !ok {
		return fmt.Errorf("kvstore: shard does not own key %d", k)
	}
	if len(vals) != len(seg) {
		return fmt.Errorf("kvstore: values for key %d have %d scalars, want %d", k, len(vals), len(seg))
	}
	copy(seg, vals)
	return nil
}

// Updates returns how many gradient applications key k has received.
func (s *Shard) Updates(k keyrange.Key) uint64 { return s.updates[k] }

// AddKey takes ownership of key k with the given segment contents (used
// by elastic rebalancing when a segment migrates in). It is an error if
// the shard already owns k or the values have the wrong size.
func (s *Shard) AddKey(k keyrange.Key, vals []float64) error {
	if _, ok := s.data[k]; ok {
		return fmt.Errorf("kvstore: shard already owns key %d", k)
	}
	if len(vals) != s.layout.KeySize(k) {
		return fmt.Errorf("kvstore: values for key %d have %d scalars, want %d",
			k, len(vals), s.layout.KeySize(k))
	}
	s.data[k] = append([]float64(nil), vals...)
	s.keys = append(s.keys, k)
	sortKeys(s.keys)
	return nil
}

// RemoveKey releases ownership of key k and returns its final segment
// contents (used by elastic rebalancing when a segment migrates out).
func (s *Shard) RemoveKey(k keyrange.Key) ([]float64, error) {
	seg, ok := s.data[k]
	if !ok {
		return nil, fmt.Errorf("kvstore: shard does not own key %d", k)
	}
	delete(s.data, k)
	delete(s.updates, k)
	for i, key := range s.keys {
		if key == k {
			s.keys = append(s.keys[:i], s.keys[i+1:]...)
			break
		}
	}
	return seg, nil
}

func sortKeys(keys []keyrange.Key) {
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
}

// GatherInto appends the concatenation of vec's segments for keys to dst
// and returns it; this is the payload layout of push/pull messages.
func GatherInto(dst []float64, layout *keyrange.Layout, vec []float64, keys []keyrange.Key) []float64 {
	for _, k := range keys {
		dst = append(dst, layout.Slice(vec, k)...)
	}
	return dst
}

// Scatter writes a concatenated payload for keys back into vec's segments.
// It returns an error if the payload length does not match the keys' total
// size.
func Scatter(layout *keyrange.Layout, vec []float64, keys []keyrange.Key, vals []float64) error {
	off := 0
	for _, k := range keys {
		sz := layout.KeySize(k)
		if off+sz > len(vals) {
			return fmt.Errorf("kvstore: payload too short: %d scalars for keys totalling more", len(vals))
		}
		copy(layout.Slice(vec, k), vals[off:off+sz])
		off += sz
	}
	if off != len(vals) {
		return fmt.Errorf("kvstore: payload has %d scalars, keys consume %d", len(vals), off)
	}
	return nil
}

// GatherShard appends the shard's segments for keys (in the given order) to
// dst — the server-side counterpart of GatherInto for pull responses.
func (s *Shard) GatherShard(dst []float64, keys []keyrange.Key) ([]float64, error) {
	for _, k := range keys {
		seg, ok := s.data[k]
		if !ok {
			return nil, fmt.Errorf("kvstore: shard does not own key %d", k)
		}
		dst = append(dst, seg...)
	}
	return dst, nil
}

// ApplyGradPayload applies a concatenated gradient payload for keys with
// the given scale — the server-side counterpart of Scatter for pushes.
func (s *Shard) ApplyGradPayload(keys []keyrange.Key, vals []float64, scale float64) error {
	off := 0
	for _, k := range keys {
		sz := s.layout.KeySize(k)
		if off+sz > len(vals) {
			return fmt.Errorf("kvstore: gradient payload too short")
		}
		if err := s.ApplyGrad(k, vals[off:off+sz], scale); err != nil {
			return err
		}
		off += sz
	}
	if off != len(vals) {
		return fmt.Errorf("kvstore: gradient payload has %d scalars, keys consume %d", len(vals), off)
	}
	return nil
}
