package telemetry

import (
	"encoding/json"
	"math/bits"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("x")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("x") != c {
		t.Error("second registration returned a different counter")
	}
	g := r.Gauge("y")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
	r.GaugeFunc("z", func() int64 { return 42 })
	s := r.Snapshot()
	if s.Counters["x"] != 5 || s.Gauges["y"] != 5 || s.Gauges["z"] != 42 {
		t.Errorf("snapshot = %+v", s)
	}
}

func TestNopRegistryIsSafe(t *testing.T) {
	r := Nop
	c := r.Counter("x")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Error("nil counter retained a value")
	}
	g := r.Gauge("y")
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge retained a value")
	}
	h := r.Histogram("z")
	h.Observe(time.Second)
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil histogram retained observations")
	}
	r.GaugeFunc("f", func() int64 { return 1 })
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Errorf("Nop snapshot not empty: %+v", s)
	}
	if r.Summary() != "" {
		t.Errorf("Nop summary = %q", r.Summary())
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	// 0 lands in bucket 0; 1ns in bucket 1; 2-3ns in bucket 2; etc.
	cases := []struct {
		d      time.Duration
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3},
		{1023, 10}, {1024, 11},
		{time.Millisecond, bits.Len64(uint64(time.Millisecond))},
		{-time.Second, 0}, // clamped
	}
	for _, c := range cases {
		h.Observe(c.d)
	}
	snap := h.Snapshot()
	if snap.Count != uint64(len(cases)) {
		t.Fatalf("count = %d, want %d", snap.Count, len(cases))
	}
	counts := map[int64]uint64{}
	for _, b := range snap.Buckets {
		counts[b.Le] = b.Count
	}
	for _, c := range cases {
		le := BucketUpperBound(c.bucket)
		if counts[le] == 0 {
			t.Errorf("observation %v: bucket le=%d empty (buckets %+v)", c.d, le, snap.Buckets)
		}
	}
	if snap.Sum != 1023+1024+1+2+3+4+int64(time.Millisecond) {
		t.Errorf("sum = %d", snap.Sum)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 0; i < 99; i++ {
		h.Observe(100 * time.Nanosecond) // bucket le=127
	}
	h.Observe(time.Second)
	if q := h.Quantile(0.5); q != 127 {
		t.Errorf("p50 = %v, want 127ns", q)
	}
	if q := h.Quantile(1); q < time.Second {
		t.Errorf("p100 = %v, want >= 1s", q)
	}
	snap := h.Snapshot()
	if snap.P50 != 127 {
		t.Errorf("snapshot P50 = %d, want 127", snap.P50)
	}
	if snap.P99 != 127 {
		// 99 of 100 observations are in the 127ns bucket.
		t.Errorf("snapshot P99 = %d, want 127", snap.P99)
	}
	if snap.Max < int64(time.Second) {
		t.Errorf("snapshot Max = %d, want >= 1s", snap.Max)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	var h Histogram
	h.Observe(time.Duration(1) << 60) // beyond the last bucket
	snap := h.Snapshot()
	if len(snap.Buckets) != 1 || snap.Buckets[0].Le != BucketUpperBound(NumBuckets-1) {
		t.Errorf("overflow landed in %+v", snap.Buckets)
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := New()
	c := r.Counter("c")
	h := r.Histogram("h")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(time.Duration(j))
				_ = r.Snapshot() // snapshots race with updates by design
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Errorf("counter = %d, histogram count = %d, want 8000 each", c.Value(), h.Count())
	}
}

func TestHandlerServesJSON(t *testing.T) {
	r := New()
	r.Counter("server.pushes_applied").Add(12)
	r.Gauge("server.v_train").Set(3)
	r.Histogram("worker.push_rtt_ns").Observe(5 * time.Microsecond)

	ts := httptest.NewServer(r.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + DebugPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var s Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["server.pushes_applied"] != 12 {
		t.Errorf("counters = %v", s.Counters)
	}
	if s.Gauges["server.v_train"] != 3 {
		t.Errorf("gauges = %v", s.Gauges)
	}
	if h := s.Histograms["worker.push_rtt_ns"]; h.Count != 1 || len(h.Buckets) != 1 {
		t.Errorf("histograms = %+v", s.Histograms)
	}
}

func TestListenAndServeAndScrape(t *testing.T) {
	r := New()
	r.Counter("pings").Add(2)
	ds, err := ListenAndServe("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	s, err := Scrape(ds.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if s.Counters["pings"] != 2 {
		t.Errorf("scraped %+v", s)
	}
}

func TestSummary(t *testing.T) {
	r := New()
	r.Counter("b.count").Add(2)
	r.Counter("a.count").Add(1)
	r.Gauge("g").Set(-4)
	r.Histogram("lat").Observe(time.Microsecond)
	r.Histogram("empty") // never observed: omitted
	sum := r.Summary()
	if !strings.Contains(sum, "a.count=1") || !strings.Contains(sum, "b.count=2") ||
		!strings.Contains(sum, "g=-4") || !strings.Contains(sum, "lat{n=1") {
		t.Errorf("summary = %q", sum)
	}
	if strings.Contains(sum, "empty") {
		t.Errorf("summary includes empty histogram: %q", sum)
	}
	if strings.Index(sum, "a.count") > strings.Index(sum, "b.count") {
		t.Errorf("summary not sorted: %q", sum)
	}
}

func TestStartLogger(t *testing.T) {
	r := New()
	r.Counter("c").Inc()
	lines := make(chan string, 8)
	stop := StartLogger(r, 5*time.Millisecond, func(format string, args ...any) {
		select {
		case lines <- format:
		default:
		}
	})
	select {
	case <-lines:
	case <-time.After(2 * time.Second):
		t.Fatal("logger never fired")
	}
	stop()
	stop() // idempotent
}
