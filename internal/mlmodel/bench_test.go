package mlmodel

import (
	"testing"

	"github.com/fluentps/fluentps/internal/dataset"
	"github.com/fluentps/fluentps/internal/mathx"
)

func benchGradient(b *testing.B, m Model, train *dataset.Dataset, batch int) {
	b.Helper()
	params := make([]float64, m.Dim())
	m.Init(mathx.RNG(1, "init"), params)
	grad := make([]float64, m.Dim())
	rng := mathx.RNG(2, "bench")
	x, y := train.Batch(rng, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Gradient(params, x, y, grad)
	}
}

func BenchmarkSoftmaxGradientB32(b *testing.B) {
	train, _ := dataset.CIFAR10Like(1)
	m, err := NewSoftmax(train.Classes, train.Dim, nil)
	if err != nil {
		b.Fatal(err)
	}
	benchGradient(b, m, train, 32)
}

func BenchmarkMLPGradientB32(b *testing.B) {
	train, _ := dataset.CIFAR10Like(1)
	m, err := NewMLP(train.Dim, 64, train.Classes, nil)
	if err != nil {
		b.Fatal(err)
	}
	benchGradient(b, m, train, 32)
}

func BenchmarkSoftmaxEvaluate(b *testing.B) {
	train, test := dataset.CIFAR10Like(1)
	m, err := NewSoftmax(train.Classes, train.Dim, nil)
	if err != nil {
		b.Fatal(err)
	}
	params := make([]float64, m.Dim())
	m.Init(mathx.RNG(1, "init"), params)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Evaluate(params, test)
	}
}
