// Package metrics holds the small result types shared by experiments: XY
// series for figures, aligned text tables for paper-style output, and CSV
// emission.
package metrics

import (
	"fmt"
	"strings"
)

// Series is one named line of a figure.
type Series struct {
	Name string
	X, Y []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// Last returns the final Y value, or NaN-free zero for empty series.
func (s *Series) Last() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	return s.Y[len(s.Y)-1]
}

// YAt returns the Y value at the largest X ≤ x (step interpolation), or
// the first Y if x precedes the series.
func (s *Series) YAt(x float64) float64 {
	if len(s.X) == 0 {
		return 0
	}
	best := s.Y[0]
	for i, xi := range s.X {
		if xi > x {
			break
		}
		best = s.Y[i]
	}
	return best
}

// Table is a paper-style results table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; cells beyond the header count are dropped.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i := range t.Headers {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells containing commas
// or quotes are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(c string) string {
		if strings.ContainsAny(c, ",\"\n") {
			return `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		return c
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// F formats a float compactly for table cells.
func F(v float64) string { return fmt.Sprintf("%.4g", v) }

// Pct formats a ratio as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
