package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/fluentps/fluentps/internal/telemetry"
)

// Multiplexed sessions: many logical message streams over one
// connection, built on the pooled frame codec.
//
// A fan-out of read-only clients must not cost the server one TCP
// connection (and two goroutines) per client. A MuxSession carries any
// number of logical streams over a single conn with exactly one reader
// and one writer goroutine per side; each stream speaks the ordinary
// Message codec and looks like a tiny endpoint (Send/Recv).
//
// Wire format — every mux frame is
//
//	length   uint32  (of everything after itself)
//	streamID uint32
//	kind     uint8
//	payload  bytes
//
// with four frame kinds:
//
//	muxData   payload = one encoded Message (the standard wire codec)
//	muxWindow payload = uint32 credit delta (flow control, see below)
//	muxClose  payload = empty; the sender is done with the stream
//	muxReject payload = uint32 retry-after hint in milliseconds
//
// Streams open implicitly: the initiator just sends the first muxData
// frame with a fresh stream ID, and the accepting side materializes the
// stream (or answers muxReject when it is at MaxStreams — admission
// control, so a pull storm backpressures instead of OOMing the server).
//
// Flow control is a count-based credit window on the initiator→acceptor
// direction: the initiator starts with Window credits per stream, each
// Send spends one, and the acceptor returns one credit (muxWindow) each
// time the application consumes a message with Recv. Responses ride
// uncredited — a request/response protocol bounds them by the window
// already. Send blocks while the window is empty; the wait is recorded
// in the transport.stream_stall_ns histogram.
//
// All streams share one outbound queue drained round-robin by the
// session's single writer goroutine, so one chatty stream cannot starve
// the rest between its frames.

// Mux frame kinds.
const (
	muxData   = 1
	muxWindow = 2
	muxClose  = 3
	muxReject = 4
)

// muxHeaderBytes is the streamID+kind preamble inside the length prefix.
const muxHeaderBytes = 5

// Mux defaults; MuxConfig zero values resolve to these.
const (
	DefaultMaxStreams = 64
	DefaultMuxWindow  = 8
)

// MuxConfig parameterizes a session. The zero value is usable.
type MuxConfig struct {
	// MaxStreams caps concurrently open streams on the accepting side;
	// excess opens are answered with muxReject (admission control).
	MaxStreams int
	// Window is the per-stream credit window for initiator sends.
	Window int
	// RetryAfter is the hint returned with muxReject.
	RetryAfter time.Duration
	// Telemetry receives transport.streams_active and
	// transport.stream_stall_ns; nil (telemetry.Nop) disables both.
	Telemetry *telemetry.Registry
}

func (c MuxConfig) withDefaults() MuxConfig {
	if c.MaxStreams <= 0 {
		c.MaxStreams = DefaultMaxStreams
	}
	if c.Window <= 0 {
		c.Window = DefaultMuxWindow
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 2 * time.Millisecond
	}
	return c
}

// MuxRejectedError reports that the peer refused a stream under
// admission control; RetryAfter is its backoff hint.
type MuxRejectedError struct{ RetryAfter time.Duration }

func (e *MuxRejectedError) Error() string {
	return fmt.Sprintf("transport: stream rejected, retry after %v", e.RetryAfter)
}

// muxFrame is one queued outbound frame in a pooled buffer.
type muxFrame struct{ bp *[]byte }

// MuxSession multiplexes logical streams over one reliable byte
// connection. Construct with NewMuxClient (initiator) or NewMuxServer
// (acceptor); both sides run one reader and one writer goroutine.
type MuxSession struct {
	conn     io.ReadWriteCloser
	cfg      MuxConfig
	accepter bool

	mu      sync.Mutex
	streams map[uint32]*MuxStream
	nextID  uint32
	err     error
	closed  bool

	wmu     sync.Mutex
	wcond   *sync.Cond
	ring    []*MuxStream // round-robin ring of streams with pending frames
	wclosed bool

	accept chan *MuxStream
	done   chan struct{}
	wg     sync.WaitGroup

	active *telemetry.Gauge
	stall  *telemetry.Histogram
}

// MuxStream is one logical message stream of a session. Send and Recv
// are each safe for one goroutine at a time (the usual endpoint
// contract); different streams are fully independent.
type MuxStream struct {
	sess *MuxSession
	id   uint32

	inbox    chan *Message
	closedCh chan struct{} // closed exactly once when the stream dies

	// Initiator-side credit window (credited == true): Send blocks while
	// credit is zero; muxWindow frames from the peer refill it.
	cmu      sync.Mutex
	ccond    *sync.Cond
	credit   int
	credited bool
	dead     bool // guarded by cmu; set by markDead

	pending []muxFrame // guarded by sess.wmu
	inRing  bool       // guarded by sess.wmu

	granting  bool // acceptor side: Recv returns a credit to the peer
	closeOnce sync.Once
	retryMs   atomic.Int32 // >0 once rejected
}

func newMuxSession(conn io.ReadWriteCloser, cfg MuxConfig, accepter bool) *MuxSession {
	cfg = cfg.withDefaults()
	s := &MuxSession{
		conn:     conn,
		cfg:      cfg,
		accepter: accepter,
		streams:  make(map[uint32]*MuxStream),
		done:     make(chan struct{}),
		active:   cfg.Telemetry.Gauge("transport.streams_active"),
		stall:    cfg.Telemetry.Histogram("transport.stream_stall_ns"),
	}
	s.wcond = sync.NewCond(&s.wmu)
	if accepter {
		s.accept = make(chan *MuxStream, cfg.MaxStreams)
	}
	s.wg.Add(2)
	go s.readLoop()
	go s.writeLoop()
	return s
}

// NewMuxClient starts the initiator side of a session: OpenStream mints
// streams, each flow-controlled by cfg.Window.
func NewMuxClient(conn io.ReadWriteCloser, cfg MuxConfig) *MuxSession {
	return newMuxSession(conn, cfg, false)
}

// NewMuxServer starts the accepting side: streams the peer opens arrive
// at AcceptStream, at most cfg.MaxStreams concurrently.
func NewMuxServer(conn io.ReadWriteCloser, cfg MuxConfig) *MuxSession {
	return newMuxSession(conn, cfg, true)
}

// DialMux connects to addr over TCP and returns the initiator session.
func DialMux(addr string, cfg MuxConfig) (*MuxSession, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial mux %s: %w", addr, err)
	}
	return NewMuxClient(conn, cfg), nil
}

func (s *MuxSession) newStream(id uint32, credited bool) *MuxStream {
	st := &MuxStream{
		sess:     s,
		id:       id,
		inbox:    make(chan *Message, s.cfg.Window),
		closedCh: make(chan struct{}),
		credit:   s.cfg.Window,
		credited: credited,
		granting: !credited,
	}
	st.ccond = sync.NewCond(&st.cmu)
	s.active.Add(1)
	return st
}

// OpenStream mints a new flow-controlled stream (initiator side only).
func (s *MuxSession) OpenStream() (*MuxStream, error) {
	if s.accepter {
		return nil, fmt.Errorf("transport: OpenStream on accepting mux session")
	}
	s.mu.Lock()
	if s.closed {
		err := s.err
		s.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return nil, err
	}
	s.nextID++
	st := s.newStream(s.nextID, true)
	s.streams[st.id] = st
	s.mu.Unlock()
	return st, nil
}

// AcceptStream blocks until the peer opens a stream (acceptor side
// only), returning ErrClosed (or the session's transport error) once
// the session is down.
func (s *MuxSession) AcceptStream() (*MuxStream, error) {
	if !s.accepter {
		return nil, fmt.Errorf("transport: AcceptStream on initiating mux session")
	}
	select {
	case st := <-s.accept:
		return st, nil
	case <-s.done:
		s.mu.Lock()
		err := s.err
		s.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return nil, err
	}
}

// enqueue appends a built frame to st's pending queue and makes the
// stream ready for the round-robin writer.
func (s *MuxSession) enqueue(st *MuxStream, f muxFrame) error {
	s.wmu.Lock()
	if s.wclosed {
		s.wmu.Unlock()
		putFrameBuf(f.bp)
		return ErrClosed
	}
	st.pending = append(st.pending, f)
	if !st.inRing {
		st.inRing = true
		s.ring = append(s.ring, st)
	}
	s.wmu.Unlock()
	s.wcond.Signal()
	return nil
}

// buildFrame lays out `length | streamID | kind | payload` in a pooled
// buffer; payload space is returned for the caller to fill.
func buildFrame(id uint32, kind uint8, payloadLen int) (muxFrame, []byte) {
	bp := getFrameBuf(4 + muxHeaderBytes + payloadLen)
	buf := binary.LittleEndian.AppendUint32((*bp)[:0], uint32(muxHeaderBytes+payloadLen))
	buf = binary.LittleEndian.AppendUint32(buf, id)
	buf = append(buf, kind)
	return muxFrame{bp: bp}, buf
}

func (s *MuxSession) enqueueCtl(st *MuxStream, kind uint8, arg uint32) error {
	n := 0
	if kind == muxWindow || kind == muxReject {
		n = 4
	}
	f, buf := buildFrame(st.id, kind, n)
	if n == 4 {
		buf = binary.LittleEndian.AppendUint32(buf, arg)
	}
	*f.bp = buf
	return s.enqueue(st, f)
}

// writeLoop is the session's single writer: it drains one frame per
// ready stream in round-robin order, so concurrent streams interleave
// fairly on the wire.
func (s *MuxSession) writeLoop() {
	defer s.wg.Done()
	for {
		s.wmu.Lock()
		for len(s.ring) == 0 && !s.wclosed {
			s.wcond.Wait()
		}
		if len(s.ring) == 0 {
			s.wmu.Unlock()
			return
		}
		st := s.ring[0]
		s.ring = s.ring[1:]
		f := st.pending[0]
		st.pending = st.pending[1:]
		if len(st.pending) > 0 {
			s.ring = append(s.ring, st)
		} else {
			st.inRing = false
		}
		s.wmu.Unlock()
		_, err := s.conn.Write(*f.bp)
		putFrameBuf(f.bp)
		if err != nil {
			s.fail(fmt.Errorf("transport: mux write: %w", err))
			return
		}
	}
}

// readLoop is the session's single reader: it demultiplexes frames to
// their streams, materializes implicitly opened streams (or rejects
// them at MaxStreams), and applies credit grants.
func (s *MuxSession) readLoop() {
	defer s.wg.Done()
	var hdr [4 + muxHeaderBytes]byte
	for {
		if _, err := io.ReadFull(s.conn, hdr[:]); err != nil {
			s.fail(err)
			return
		}
		n := binary.LittleEndian.Uint32(hdr[:4])
		if n < muxHeaderBytes || n > muxHeaderBytes+maxFrameBytes {
			s.fail(fmt.Errorf("transport: invalid mux frame length %d", n))
			return
		}
		id := binary.LittleEndian.Uint32(hdr[4:8])
		kind := hdr[8]
		payloadLen := int(n) - muxHeaderBytes
		var bp *[]byte
		var payload []byte
		if payloadLen > 0 {
			bp = getFrameBuf(payloadLen)
			payload = (*bp)[:payloadLen]
			if _, err := io.ReadFull(s.conn, payload); err != nil {
				putFrameBuf(bp)
				s.fail(fmt.Errorf("transport: mux read body: %w", err))
				return
			}
		}
		ok := s.dispatchFrame(id, kind, payload)
		if bp != nil {
			putFrameBuf(bp)
		}
		if !ok {
			return
		}
	}
}

// dispatchFrame routes one received frame; false means session-fatal.
func (s *MuxSession) dispatchFrame(id uint32, kind uint8, payload []byte) bool {
	switch kind {
	case muxData:
		st, rejected := s.streamForData(id)
		if rejected {
			return true
		}
		if st == nil {
			return true // stream already closed; drop quietly
		}
		m := NewMessage()
		if err := DecodeInto(m, payload); err != nil {
			Release(m)
			s.fail(fmt.Errorf("transport: mux decode: %w", err))
			return false
		}
		m.owner = ownerReceiver
		select {
		case st.inbox <- m:
		case <-st.closedCh:
			Release(m)
		case <-s.done:
			Release(m)
			return false
		}
	case muxWindow:
		if len(payload) != 4 {
			s.fail(fmt.Errorf("transport: mux window frame length %d", len(payload)))
			return false
		}
		if st := s.lookup(id); st != nil {
			st.grant(int(binary.LittleEndian.Uint32(payload)))
		}
	case muxClose:
		if st := s.lookup(id); st != nil {
			s.dropStream(st)
			st.markDead()
		}
	case muxReject:
		if len(payload) != 4 {
			s.fail(fmt.Errorf("transport: mux reject frame length %d", len(payload)))
			return false
		}
		if st := s.lookup(id); st != nil {
			ms := int32(binary.LittleEndian.Uint32(payload))
			if ms < 1 {
				ms = 1
			}
			st.retryMs.Store(ms)
			s.dropStream(st)
			st.markDead()
		}
	default:
		s.fail(fmt.Errorf("transport: unknown mux frame kind %d", kind))
		return false
	}
	return true
}

// streamForData resolves the stream for an incoming data frame,
// materializing it on the accepting side (implicit open) or rejecting
// it when the session is at MaxStreams.
func (s *MuxSession) streamForData(id uint32) (st *MuxStream, rejected bool) {
	s.mu.Lock()
	st = s.streams[id]
	if st != nil || !s.accepter || s.closed {
		s.mu.Unlock()
		return st, false
	}
	if len(s.streams) >= s.cfg.MaxStreams {
		s.mu.Unlock()
		// The rejected stream never existed here; answer on a transient
		// handle that shares only the wire ID.
		tmp := &MuxStream{sess: s, id: id}
		_ = s.enqueueCtl(tmp, muxReject, uint32(s.cfg.RetryAfter.Milliseconds()))
		return nil, true
	}
	st = s.newStream(id, false)
	s.streams[id] = st
	s.mu.Unlock()
	select {
	case s.accept <- st:
	case <-s.done:
	}
	return st, false
}

func (s *MuxSession) lookup(id uint32) *MuxStream {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.streams[id]
}

func (s *MuxSession) dropStream(st *MuxStream) {
	s.mu.Lock()
	if _, ok := s.streams[st.id]; ok {
		delete(s.streams, st.id)
		s.active.Add(-1)
	}
	s.mu.Unlock()
}

// fail tears the session down with err: conn closed, writer woken,
// every stream unblocked.
func (s *MuxSession) fail(err error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if err != io.EOF {
		s.err = err
	}
	open := make([]*MuxStream, 0, len(s.streams))
	for _, st := range s.streams {
		open = append(open, st)
	}
	s.streams = make(map[uint32]*MuxStream)
	s.active.Add(-int64(len(open)))
	s.mu.Unlock()

	close(s.done)
	_ = s.conn.Close()
	s.wmu.Lock()
	s.wclosed = true
	for _, st := range open {
		for _, f := range st.pending {
			putFrameBuf(f.bp)
		}
		st.pending = nil
	}
	s.ring = nil
	s.wmu.Unlock()
	s.wcond.Broadcast()
	for _, st := range open {
		st.markDead()
	}
}

// Close shuts the session down: both goroutines exit, every stream's
// Recv returns ErrClosed, and queued frames are recycled.
func (s *MuxSession) Close() error {
	s.fail(nil)
	s.wg.Wait()
	return nil
}

// Err returns the session's terminal transport error (nil for a clean
// local Close or remote EOF).
func (s *MuxSession) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// ID returns the stream's wire ID.
func (st *MuxStream) ID() uint32 { return st.id }

// Send encodes m as one data frame and queues it. On the initiator
// side it first takes a flow-control credit, blocking while the window
// is empty (the wait lands in transport.stream_stall_ns). The message
// is fully encoded before Send returns, so the caller keeps ownership
// of m (like a copying transport).
func (st *MuxStream) Send(m *Message) error {
	start := time.Now()
	waited := false
	st.cmu.Lock()
	if st.credited {
		for st.credit <= 0 && !st.dead {
			waited = true
			st.ccond.Wait()
		}
	}
	if st.dead {
		st.cmu.Unlock()
		return st.termErr()
	}
	if st.credited {
		st.credit--
	}
	st.cmu.Unlock()
	if waited {
		st.sess.stall.Observe(time.Since(start))
	}
	n := EncodedSize(m)
	if n > maxFrameBytes {
		return fmt.Errorf("transport: mux message of %d bytes exceeds frame limit %d", n, maxFrameBytes)
	}
	f, buf := buildFrame(st.id, muxData, n)
	buf = Encode(buf, m)
	*f.bp = buf
	return st.sess.enqueue(st, f)
}

// Recv returns the next message on the stream (pooled, receiver-owned:
// release with ReleaseReceived). On the accepting side it returns one
// flow-control credit to the peer. A rejected stream returns
// *MuxRejectedError; a closed stream or session returns ErrClosed or
// the session's transport error.
func (st *MuxStream) Recv() (*Message, error) {
	select {
	case m := <-st.inbox:
		if st.granting {
			_ = st.sess.enqueueCtl(st, muxWindow, 1)
		}
		return m, nil
	case <-st.closedCh:
	}
	// The stream died, but messages delivered before the close are still
	// readable — drain them before reporting termination.
	select {
	case m := <-st.inbox:
		return m, nil
	default:
		return nil, st.termErr()
	}
}

// Close retires the stream: the peer sees muxClose, and both sides
// forget the ID.
func (st *MuxStream) Close() error {
	st.sess.dropStream(st)
	_ = st.sess.enqueueCtl(st, muxClose, 0)
	st.markDead()
	return nil
}

// markDead terminates the stream exactly once: credit waiters wake,
// Recv observes closedCh, delivered-but-unread pooled messages are left
// to the garbage collector (safe per the pool contract).
func (st *MuxStream) markDead() {
	st.closeOnce.Do(func() {
		st.cmu.Lock()
		st.dead = true
		st.cmu.Unlock()
		st.ccond.Broadcast()
		close(st.closedCh)
	})
}

func (st *MuxStream) termErr() error {
	if ms := st.retryMs.Load(); ms > 0 {
		return &MuxRejectedError{RetryAfter: time.Duration(ms) * time.Millisecond}
	}
	if st.sess != nil {
		if err := st.sess.Err(); err != nil {
			return err
		}
	}
	return ErrClosed
}

// grant refills the send window by n and wakes blocked senders.
func (st *MuxStream) grant(n int) {
	st.cmu.Lock()
	st.credit += n
	st.cmu.Unlock()
	st.ccond.Broadcast()
}
