// Command fluentbench regenerates the paper's tables and figures.
//
// Usage:
//
//	fluentbench -list
//	fluentbench -exp fig6
//	fluentbench -exp all -quick
//	fluentbench -exp tab4 -csv
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/fluentps/fluentps/internal/experiments"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available experiments and exit")
		exp     = flag.String("exp", "", "experiment id to run, or 'all'")
		quick   = flag.Bool("quick", false, "reduced iteration counts (~1s per experiment)")
		csv     = flag.Bool("csv", false, "emit tables as CSV instead of aligned text")
		out     = flag.String("out", "", "also write each experiment's tables as CSV files into this directory")
		seed    = flag.Int64("seed", 1, "experiment seed")
		hotpath = flag.Bool("hotpath", false, "benchmark the push/pull hot path (ns, bytes, allocs per step) and exit")
		apply   = flag.Bool("apply", false, "benchmark push-apply throughput, serial vs wave-batched engine, and exit")
		adapt   = flag.Bool("adaptive", false, "run the adaptive-vs-fixed regret sweep over heterogeneous traces, emit JSON on stdout, and exit")
		scen    = flag.Bool("scenarios", false, "run the scenario matrix (policy × topology × fault), emit the JSON scorecard on stdout, and exit")
		fanout  = flag.Bool("fanout", false, "run the read-tier fan-out sweep (RO snapshots vs locked pulls at 1..64 readers), emit JSON on stdout, and exit")
	)
	flag.Parse()

	if *hotpath {
		if err := runHotpath(context.Background()); err != nil {
			fmt.Fprintf(os.Stderr, "fluentbench: hotpath: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *apply {
		if err := runApply(); err != nil {
			fmt.Fprintf(os.Stderr, "fluentbench: apply: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *adapt {
		// Stdout carries only the JSON document so the Makefile can redirect
		// it into BENCH_adaptive.json; the human-readable digest goes to
		// stderr.
		results := experiments.AdaptiveSweep(experiments.Options{Quick: *quick, Seed: *seed})
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintf(os.Stderr, "fluentbench: adaptive: %v\n", err)
			os.Exit(1)
		}
		for _, r := range results {
			fmt.Fprintf(os.Stderr, "%-12s adaptive %.4f vs best fixed %s %.4f (ratio %.3f)\n",
				r.Trace, r.AdaptiveRegret, r.BestFixed, r.BestFixedRegret, r.Ratio)
		}
		return
	}
	if *scen {
		// Stdout carries only the JSON scorecard (BENCH_scenarios.json);
		// the per-group digest goes to stderr.
		res, err := experiments.ScenarioSweep(experiments.Options{Quick: *quick, Seed: *seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "fluentbench: scenarios: %v\n", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(os.Stderr, "fluentbench: scenarios: %v\n", err)
			os.Exit(1)
		}
		for _, g := range res.Groups {
			fmt.Fprintf(os.Stderr, "%-8s %-13s adaptive %.4f vs best fixed %-11s %.4f (ratio %.3f, win=%v)\n",
				g.Topology, g.Fault, g.AdaptiveRegret, g.BestFixed, g.BestFixedRegret, g.Ratio, g.Win)
		}
		fmt.Fprintf(os.Stderr, "adaptive dominance: %d/%d hazard groups (%.0f%%)\n",
			res.HazardWins, res.HazardGroups, 100*res.DominanceRate)
		return
	}

	if *fanout {
		// Stdout carries only the JSON document (BENCH_fanout.json); the
		// per-cell digest and gate verdicts go to stderr.
		res, err := experiments.FanoutSweep(context.Background(), experiments.Options{Quick: *quick, Seed: *seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "fluentbench: fanout: %v\n", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(os.Stderr, "fluentbench: fanout: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprint(os.Stderr, res.Digest())
		if !res.ScaleGate || !res.P99Gate {
			fmt.Fprintln(os.Stderr, "fluentbench: fanout: acceptance gates FAILED")
			os.Exit(1)
		}
		return
	}

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-10s %s\n", e.ID, e.Title)
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun one with: fluentbench -exp <id>")
		}
		return
	}

	var toRun []*experiments.Experiment
	if *exp == "all" {
		toRun = experiments.All()
	} else {
		e, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "fluentbench: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		toRun = []*experiments.Experiment{e}
	}

	opts := experiments.Options{Quick: *quick, Seed: *seed}
	for _, e := range toRun {
		fmt.Printf("== %s: %s\n", e.ID, e.Title)
		fmt.Printf("   paper: %s\n\n", e.Paper)
		start := time.Now()
		rep, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fluentbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *csv {
			for _, t := range rep.Tables {
				fmt.Println(t.CSV())
			}
			for _, n := range rep.Notes {
				fmt.Println("#", n)
			}
		} else {
			fmt.Print(rep.String())
		}
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "fluentbench: %v\n", err)
				os.Exit(1)
			}
			for i, t := range rep.Tables {
				name := fmt.Sprintf("%s_%d.csv", e.ID, i)
				if err := os.WriteFile(filepath.Join(*out, name), []byte(t.CSV()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "fluentbench: %v\n", err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("\n   (%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
}
