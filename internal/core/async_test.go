package core

import (
	"testing"
	"time"

	"github.com/fluentps/fluentps/internal/keyrange"
	"github.com/fluentps/fluentps/internal/syncmodel"
	"github.com/fluentps/fluentps/internal/transport"
)

// TestAsyncPushDoesNotBlock: Algorithm 1's worker sends pushes without
// waiting (line 4); a handle resolves the acks later.
func TestAsyncPushDoesNotBlock(t *testing.T) {
	net, srv, layout, assign := testServer(t, syncmodel.ASP(), syncmodel.Lazy, 1)
	w, err := NewWorker(net.Endpoint(transport.Worker(0)), WorkerConfig{Rank: 0, Layout: layout, Assignment: assign})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	h, err := w.SPushAsync(tctx, 0, make([]float64, 5))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(tctx); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.Pushes != 1 {
		t.Errorf("pushes = %d", st.Pushes)
	}
}

// TestAsyncPullOverlapsAcrossShards: with two shards under different
// conditions, the pull handle resolves only when BOTH answered — the fast
// shard's response arrives while the slow shard still holds its DPR
// (overlap synchronization, §III-D).
func TestAsyncPullOverlapsAcrossShards(t *testing.T) {
	layout := keyrange.MustLayout([]int{3, 4})
	assign := keyrange.FromServerOf([]int{0, 1}, 2)
	net := transport.NewChanNetwork(64)

	start := func(rank int, model syncmodel.Model) *Server {
		srv, err := NewServer(net.Endpoint(transport.Server(rank)), ServerConfig{
			Rank:       rank,
			NumWorkers: 2,
			Layout:     layout,
			Assignment: assign,
			Model:      model,
			Drain:      syncmodel.Lazy,
		})
		if err != nil {
			t.Fatal(err)
		}
		go srv.Run()
		return srv
	}
	// Shard 0: ASP (answers instantly). Shard 1: BSP (delays until the
	// round closes).
	start(0, syncmodel.ASP())
	srv1 := start(1, syncmodel.BSP())
	t.Cleanup(func() {
		ep := net.Endpoint(transport.Worker(60))
		for m := 0; m < 2; m++ {
			_ = ep.Send(&transport.Message{Type: transport.MsgShutdown, To: transport.Server(m)})
		}
		ep.Close()
	})

	w0, err := NewWorker(net.Endpoint(transport.Worker(0)), WorkerConfig{Rank: 0, Layout: layout, Assignment: assign})
	if err != nil {
		t.Fatal(err)
	}
	defer w0.Close()
	w1, err := NewWorker(net.Endpoint(transport.Worker(1)), WorkerConfig{Rank: 1, Layout: layout, Assignment: assign})
	if err != nil {
		t.Fatal(err)
	}
	defer w1.Close()

	if err := w0.SPush(tctx, 0, make([]float64, layout.TotalDim())); err != nil {
		t.Fatal(err)
	}
	params := make([]float64, layout.TotalDim())
	h, err := w0.SPullAsync(tctx, 0, params)
	if err != nil {
		t.Fatal(err)
	}
	// Give the fast shard time to answer; the handle must still be
	// pending because the BSP shard has buffered its half.
	waitUntil(t, time.Second, "BSP shard to buffer the pull", func() bool {
		return srv1.Stats().DPRs > 0
	})
	done := make(chan error, 1)
	go func() { done <- h.Wait(tctx) }()
	select {
	case <-done:
		t.Fatal("pull resolved although the BSP shard is still blocked")
	case <-time.After(50 * time.Millisecond):
	}
	// Worker 1's push closes the BSP shard's round; the handle resolves.
	if err := w1.SPush(tctx, 0, make([]float64, layout.TotalDim())); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pull never resolved after the round closed")
	}
}
