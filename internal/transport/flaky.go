package transport

import (
	"math/rand"
	"sync"
	"time"
)

// FlakyConfig selects the faults a Flaky endpoint injects into its
// outbound data-plane frames. Probabilities are independent per frame;
// a frame can be both duplicated and delayed.
type FlakyConfig struct {
	// Drop is the probability the original frame is discarded (its
	// duplicate, if rolled, is still delivered — modelling a retransmit
	// overtaking a lost first copy).
	Drop float64
	// Duplicate is the probability one extra copy of the frame is sent.
	Duplicate float64
	// Delay is the probability a delivered copy is deferred by a uniform
	// duration in (0, MaxDelay].
	Delay float64
	// MaxDelay bounds an injected delay; zero disables delaying even
	// when Delay > 0.
	MaxDelay time.Duration
	// Seed makes the fault schedule deterministic.
	Seed int64
	// All subjects every message type to faults. By default only the
	// data-plane types (push, push-ack, pull, pull-response) are faulted,
	// so registration and shutdown stay reliable and a test cluster can
	// always be assembled and torn down.
	All bool
}

// FlakyStats counts the faults a Flaky endpoint injected.
type FlakyStats struct {
	Sent       int64 // fault-eligible frames offered to Send
	Dropped    int64 // original copies discarded
	Duplicated int64 // extra copies emitted
	Delayed    int64 // copies deferred
}

// Flaky wraps an Endpoint and drops, duplicates, and delays its outbound
// frames — a deterministic fault-injection harness for exercising the
// retry/dedup machinery end to end. Wrap every node's endpoint to fault
// both directions of a conversation. Recv and ID pass through.
type Flaky struct {
	inner Endpoint
	cfg   FlakyConfig

	mu     sync.Mutex
	rng    *rand.Rand
	timers map[*time.Timer]struct{}
	closed bool
	stats  FlakyStats
}

// NewFlaky wraps inner with the given fault configuration.
func NewFlaky(inner Endpoint, cfg FlakyConfig) *Flaky {
	return &Flaky{
		inner:  inner,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		timers: make(map[*time.Timer]struct{}),
	}
}

// Stats returns a snapshot of the injected-fault counters.
func (f *Flaky) Stats() FlakyStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// ID returns the wrapped endpoint's node id.
func (f *Flaky) ID() NodeID { return f.inner.ID() }

// faultable reports whether t is subject to injected faults.
func (f *Flaky) faultable(t MsgType) bool {
	if f.cfg.All {
		return true
	}
	switch t {
	case MsgPush, MsgPushAck, MsgPull, MsgPullResp:
		return true
	default:
		return false
	}
}

// Send applies the fault rolls to m and forwards the surviving copies.
// A fully dropped frame returns nil — from the caller's point of view
// the send succeeded and the frame was lost in the network.
func (f *Flaky) Send(m *Message) error {
	if m.From == (NodeID{}) {
		m.From = f.inner.ID()
	}
	if !f.faultable(m.Type) {
		return f.inner.Send(m)
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ErrClosed
	}
	f.stats.Sent++
	drop := f.rng.Float64() < f.cfg.Drop
	dup := f.rng.Float64() < f.cfg.Duplicate
	if drop {
		f.stats.Dropped++
	}
	if dup {
		f.stats.Duplicated++
	}
	copies := 0
	if !drop {
		copies++
	}
	if dup {
		copies++
	}
	delays := make([]time.Duration, copies)
	for i := range delays {
		if f.cfg.MaxDelay > 0 && f.rng.Float64() < f.cfg.Delay {
			delays[i] = time.Duration(1 + f.rng.Int63n(int64(f.cfg.MaxDelay)))
			f.stats.Delayed++
		}
	}
	f.mu.Unlock()
	// At most one copy may travel as the caller's pointer, and only
	// synchronously: duplicated and delayed copies are deep clones, because
	// the sender — or the receiver, after an ownership handoff — may
	// recycle a pooled message the instant the original delivery is
	// processed (see pool.go ownership rules). Every clone is therefore
	// taken BEFORE the caller's pointer reaches the inner Send.
	var immediate []*Message
	usedOriginal := false
	for _, d := range delays {
		var c *Message
		if d == 0 && !usedOriginal {
			usedOriginal = true
			c = m
		} else {
			c = m.Clone()
		}
		if d > 0 {
			f.sendLater(c, d)
		} else {
			immediate = append(immediate, c)
		}
	}
	var firstErr error
	for _, c := range immediate {
		if err := f.inner.Send(c); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// SendCopies defers to the wrapped endpoint: immediate deliveries forward
// the caller's pointer, so Flaky copies exactly when its inner does.
func (f *Flaky) SendCopies() bool { return SendCopies(f.inner) }

// sendLater delivers m after d; a delivery failure after the delay is
// indistinguishable from a drop, which is the point of this wrapper.
func (f *Flaky) sendLater(m *Message, d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return // dropping at close is fine: the cluster is going away
	}
	var t *time.Timer
	t = time.AfterFunc(d, func() {
		f.mu.Lock()
		delete(f.timers, t)
		closed := f.closed
		f.mu.Unlock()
		if !closed {
			_ = f.inner.Send(m)
		}
	})
	f.timers[t] = struct{}{}
}

// Recv passes through to the wrapped endpoint.
func (f *Flaky) Recv() (*Message, error) { return f.inner.Recv() }

// Close stops pending delayed deliveries and closes the wrapped endpoint.
func (f *Flaky) Close() error {
	f.mu.Lock()
	f.closed = true
	for t := range f.timers {
		t.Stop()
	}
	f.timers = map[*time.Timer]struct{}{}
	f.mu.Unlock()
	return f.inner.Close()
}

var _ Endpoint = (*Flaky)(nil)

// Unwrap exposes the wrapped endpoint so capability probes (e.g.
// SetPeerAddr) can reach transport-specific features through the fault
// injector.
func (f *Flaky) Unwrap() Endpoint { return f.inner }
