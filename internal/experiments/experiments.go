// Package experiments regenerates every table and figure of the paper's
// evaluation section (plus validation of its two theorems) on the
// substrates built in this repository. Each experiment prints the same
// rows/series the paper reports; EXPERIMENTS.md records paper-vs-measured
// for each.
//
// Cluster calibration: the paper used a 32-node AWS GPU cluster
// (ResNet-56, batch 4096, 8 servers) and a 64/128-node CPU cluster
// (AlexNet, batch 6400, 1 server). The simulator's compute and network
// models below are calibrated so compute-vs-communication ratios and
// straggler behaviour land in the same regime; absolute seconds are
// arbitrary units (see DESIGN.md §2).
package experiments

import (
	"fmt"
	"sort"

	"github.com/fluentps/fluentps/internal/dataset"
	"github.com/fluentps/fluentps/internal/keyrange"
	"github.com/fluentps/fluentps/internal/metrics"
	"github.com/fluentps/fluentps/internal/mlmodel"
	"github.com/fluentps/fluentps/internal/optimizer"
	"github.com/fluentps/fluentps/internal/sim"
)

// Options tunes an experiment run.
type Options struct {
	// Quick shrinks iteration counts and sweep sizes so the experiment
	// finishes in roughly a second — used by unit tests and -short
	// benchmarks. The full configuration reproduces the paper's shapes
	// with comfortable margins.
	Quick bool
	// Seed makes the whole experiment deterministic.
	Seed int64
}

// Report is an experiment's output.
type Report struct {
	Tables []*metrics.Table
	Series []*metrics.Series
	// Notes are the headline comparisons (speedups, reductions) the
	// paper's text quotes, computed from this run's numbers.
	Notes []string
}

// Notef appends a formatted headline note.
func (r *Report) Notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the full report as text.
func (r *Report) String() string {
	out := ""
	for _, tb := range r.Tables {
		out += tb.String() + "\n"
	}
	for _, n := range r.Notes {
		out += "• " + n + "\n"
	}
	return out
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID    string
	Title string
	// Paper summarizes the shape the paper reports, for side-by-side
	// reading with this run's Notes.
	Paper string
	Run   func(Options) (*Report, error)
}

var registry = map[string]*Experiment{}

func register(e *Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every registered experiment sorted by id.
func All() []*Experiment {
	out := make([]*Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID looks up an experiment.
func ByID(id string) (*Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// ---- shared workloads & calibration ----

// workload bundles a model proxy with its dataset.
type workload struct {
	name        string
	model       mlmodel.Model
	train, test *dataset.Dataset
	lr          float64
}

// alexNetC10 is the paper's AlexNet-on-CIFAR-10 workload: the linear
// softmax proxy (see DESIGN.md §2).
func alexNetC10(seed int64) workload {
	train, test := dataset.CIFAR10Like(seed)
	m, err := mlmodel.NewSoftmax(10, train.Dim, nil)
	if err != nil {
		panic(err)
	}
	return workload{name: "AlexNet/CIFAR-10", model: m, train: train, test: test, lr: 0.1}
}

// alexNetC100 is AlexNet on CIFAR-100.
func alexNetC100(seed int64) workload {
	train, test := dataset.CIFAR100Like(seed)
	m, err := mlmodel.NewSoftmax(100, train.Dim, nil)
	if err != nil {
		panic(err)
	}
	return workload{name: "AlexNet/CIFAR-100", model: m, train: train, test: test, lr: 0.1}
}

// resNetLayout carves an MLP's parameters the way ResNet-56's keys land
// in PS-Lite's flat key space: many light conv-block keys plus a heavy
// tail (the paper's default-slicing imbalance applies to ResNet too,
// where EPS still buys ~1.42×).
func resNetLayout(total int) *keyrange.Layout {
	return mlmodel.SkewedLayout(total, 16, 0.45)
}

// resNet56C10 is ResNet-56 on CIFAR-10: the 2-layer MLP proxy.
func resNet56C10(seed int64) workload {
	train, test := dataset.CIFAR10Like(seed)
	const hidden = 64
	total := hidden*train.Dim + hidden + 10*hidden + 10
	m, err := mlmodel.NewMLP(train.Dim, hidden, 10, resNetLayout(total))
	if err != nil {
		panic(err)
	}
	return workload{name: "ResNet-56/CIFAR-10", model: m, train: train, test: test, lr: 0.03}
}

// resNet56C100 is ResNet-56 on CIFAR-100.
func resNet56C100(seed int64) workload {
	train, test := dataset.CIFAR100Like(seed)
	const hidden = 96
	total := hidden*train.Dim + hidden + 100*hidden + 100
	m, err := mlmodel.NewMLP(train.Dim, hidden, 100, resNetLayout(total))
	if err != nil {
		panic(err)
	}
	return workload{name: "ResNet-56/CIFAR-100", model: m, train: train, test: test, lr: 0.03}
}

// gpuCompute calibrates the GPU cluster: total batch 4096 split over N
// workers; per-iteration compute shrinks ∝1/N. Mild noise plus occasional
// 3× stragglers ("randomly slower nodes").
func gpuCompute(workers int) sim.ComputeModel {
	return sim.ComputeModel{
		Mean:           0.0008 * 4096 / float64(workers),
		CV:             0.2,
		StraggleProb:   0.05,
		StraggleFactor: 3,
	}
}

// gpuNet calibrates the GPU fabric so one full-model transfer costs the
// same order as one N=32 compute interval — the regime where Fig 6's
// communication share dominates under non-overlap synchronization.
func gpuNet() sim.NetworkModel {
	return sim.NetworkModel{Latency: 0.0002, Bandwidth: 4e5}
}

// cpuCompute calibrates the CPU cluster: total batch 6400, slower nodes,
// heavier straggling, and permanent speed heterogeneity (commodity
// machines differ; a persistently slow node is what makes progress gaps
// grow past any fixed staleness threshold).
func cpuCompute(workers int) sim.ComputeModel {
	return sim.ComputeModel{
		Mean:           0.002 * 6400 / float64(workers),
		CV:             0.3,
		StraggleProb:   0.08,
		StraggleFactor: 4,
		SpeedSpread:    0.25,
	}
}

// cpuNet calibrates the 1 Gbps CPU fabric.
func cpuNet() sim.NetworkModel {
	return sim.NetworkModel{Latency: 0.0005, Bandwidth: 2e5}
}

// realBatch maps the paper's huge logical batches to the proxy models'
// actual minibatch: total 512 examples split across workers (keeping the
// gradient-noise-grows-with-N property), never below 2.
func realBatch(workers int) int {
	b := 512 / workers
	if b < 2 {
		b = 2
	}
	return b
}

// sgd returns a plain-SGD factory at the workload's rate.
func (w workload) sgd() func() optimizer.Optimizer {
	lr := w.lr
	return func() optimizer.Optimizer { return &optimizer.SGD{LR: lr} }
}

// momentum returns a momentum factory at the workload's rate.
func (w workload) momentum() func() optimizer.Optimizer {
	lr := w.lr
	return func() optimizer.Optimizer { return &optimizer.Momentum{LR: lr, Mu: 0.9} }
}

// iters scales an iteration budget down in Quick mode.
func iters(opts Options, full, quick int) int {
	if opts.Quick {
		return quick
	}
	return full
}
