package sim

import (
	"math"
	"reflect"
	"testing"

	"github.com/fluentps/fluentps/internal/dataset"
	"github.com/fluentps/fluentps/internal/mlmodel"
	"github.com/fluentps/fluentps/internal/optimizer"
	"github.com/fluentps/fluentps/internal/pslite"
	"github.com/fluentps/fluentps/internal/syncmodel"
)

// simBase returns a small but non-trivial simulated job config.
func simBase(t testing.TB) Config {
	t.Helper()
	train, test := dataset.CIFAR10Like(71)
	model, err := mlmodel.NewSoftmax(10, train.Dim, nil)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Arch:         ArchFluentPS,
		Workers:      8,
		Servers:      2,
		Model:        model,
		Train:        train,
		Test:         test,
		Sync:         syncmodel.BSP(),
		Drain:        syncmodel.Lazy,
		UseEPS:       true,
		NewOptimizer: func() optimizer.Optimizer { return &optimizer.SGD{LR: 0.1} },
		BatchSize:    8,
		Iters:        150,
		Compute:      ComputeModel{Mean: 0.1, CV: 0.3},
		Net:          NetworkModel{Latency: 0.0005, Bandwidth: 1e7},
		Seed:         13,
	}
}

func TestSimValidation(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Workers = 0 },
		func(c *Config) { c.Servers = 0 },
		func(c *Config) { c.Model = nil },
		func(c *Config) { c.Train = nil },
		func(c *Config) { c.BatchSize = 0 },
		func(c *Config) { c.Iters = 0 },
		func(c *Config) { c.NewOptimizer = nil },
		func(c *Config) { c.Compute.Mean = 0 },
		func(c *Config) { c.Net.Bandwidth = 0 },
		func(c *Config) { c.Sync = syncmodel.Model{}; c.SyncFor = nil },
		func(c *Config) { c.Significances = make([]float64, 3) },
		func(c *Config) { c.Arch = ArchSSPTable; c.Staleness = -1 },
	}
	for i, mutate := range mutations {
		cfg := simBase(t)
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestSimFluentBSPTrainsAndAccounts(t *testing.T) {
	cfg := simBase(t)
	cfg.EvalEvery = 50
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAcc < 0.5 {
		t.Errorf("accuracy %.3f, want ≥ 0.5", res.FinalAcc)
	}
	if res.TotalTime <= 0 {
		t.Error("no simulated time elapsed")
	}
	// Compute dominates at this bandwidth; total time must be at least
	// the average compute and comm + compute must roughly cover total.
	if res.ComputeTime <= 0 || res.ComputeTime > res.TotalTime {
		t.Errorf("compute time %.3f vs total %.3f", res.ComputeTime, res.TotalTime)
	}
	if sum := res.ComputeTime + res.CommTime; sum < 0.8*res.TotalTime || sum > 1.2*res.TotalTime {
		t.Errorf("compute+comm = %.3f does not account for total %.3f", sum, res.TotalTime)
	}
	if len(res.History) != 3 {
		t.Errorf("history has %d points, want 3", len(res.History))
	}
	for _, st := range res.ServerStats {
		if st.Advances != cfg.Iters {
			t.Errorf("server advanced %d rounds, want %d", st.Advances, cfg.Iters)
		}
	}
	if res.BytesOnWire == 0 {
		t.Error("no bytes accounted")
	}
}

func TestSimDeterminism(t *testing.T) {
	cfg := simBase(t)
	cfg.Sync = syncmodel.PSSPConst(2, 0.5)
	cfg.Compute.StraggleProb = 0.05
	cfg.Compute.StraggleFactor = 5
	cfg.Iters = 80
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalTime != b.TotalTime || a.FinalAcc != b.FinalAcc || a.DPRs != b.DPRs {
		t.Errorf("simulation not deterministic: %+v vs %+v", a, b)
	}
	if !reflect.DeepEqual(a.ServerStats, b.ServerStats) {
		t.Error("server stats differ across identical runs")
	}
}

func TestSimStragglersHurtBSPMoreThanASP(t *testing.T) {
	base := simBase(t)
	base.Iters = 100
	base.Compute.StraggleProb = 0.1
	base.Compute.StraggleFactor = 8

	bsp := base
	bsp.Sync = syncmodel.BSP()
	asp := base
	asp.Sync = syncmodel.ASP()

	rb, err := Run(bsp)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := Run(asp)
	if err != nil {
		t.Fatal(err)
	}
	if !(ra.TotalTime < rb.TotalTime*0.8) {
		t.Errorf("ASP time %.2f not clearly below BSP %.2f under stragglers", ra.TotalTime, rb.TotalTime)
	}
}

func TestSimSSPReducesDPRsWithPSSP(t *testing.T) {
	base := simBase(t)
	base.Iters = 200
	base.Compute.CV = 0.5
	base.Compute.StraggleProb = 0.05
	base.Compute.StraggleFactor = 4

	ssp := base
	ssp.Sync = syncmodel.SSP(2)
	pssp := base
	pssp.Sync = syncmodel.PSSPConst(2, 0.2)

	rs, err := Run(ssp)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Run(pssp)
	if err != nil {
		t.Fatal(err)
	}
	if rs.DPRs == 0 {
		t.Fatal("SSP produced no DPRs; straggler model too tame")
	}
	if !(rp.DPRs < rs.DPRs/2) {
		t.Errorf("PSSP DPRs %d not well below SSP %d", rp.DPRs, rs.DPRs)
	}
	per := rs.DPRsPer100Iters(base.Iters)
	if per <= 0 {
		t.Errorf("DPRs per 100 iters = %v", per)
	}
}

func TestSimOverlapBeatsNonOverlap(t *testing.T) {
	// The Fig 6 core claim: at equal BSP semantics, FluentPS (overlap,
	// async pushes) finishes faster than PS-Lite (scheduler barrier
	// between push and pull), and the gap is communication time.
	train, test := dataset.CIFAR10Like(72)
	model, err := mlmodel.NewMLP(train.Dim, 64, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	base := simBase(t)
	base.Model = model
	base.Train, base.Test = train, test
	base.NewOptimizer = func() optimizer.Optimizer { return &optimizer.SGD{LR: 0.05} }
	base.Workers = 16
	base.Servers = 4
	base.Iters = 60
	base.Net = NetworkModel{Latency: 0.001, Bandwidth: 2e6} // comm-heavy

	fl := base
	fl.Arch = ArchFluentPS
	fl.Sync = syncmodel.BSP()
	ps := base
	ps.Arch = ArchPSLite
	ps.PSLiteMode = pslite.BSP()

	rf, err := Run(fl)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Run(ps)
	if err != nil {
		t.Fatal(err)
	}
	if !(rf.TotalTime < rp.TotalTime) {
		t.Errorf("FluentPS %.2fs not faster than PS-Lite %.2fs", rf.TotalTime, rp.TotalTime)
	}
	if !(rf.CommTime < rp.CommTime) {
		t.Errorf("FluentPS comm %.2fs not below PS-Lite %.2fs", rf.CommTime, rp.CommTime)
	}
	if rp.Barriers == 0 {
		t.Error("PS-Lite recorded no barriers")
	}
	// Both must still learn.
	if rf.FinalAcc < 0.4 || rp.FinalAcc < 0.4 {
		t.Errorf("accuracies %.3f / %.3f", rf.FinalAcc, rp.FinalAcc)
	}
}

func TestSimEPSReducesCommOnSkewedModel(t *testing.T) {
	// The AlexNet-like skewed layout puts 60% of parameters on one key;
	// default slicing then bottlenecks one server NIC. EPS rebalances.
	base := simBase(t)
	base.Workers = 16
	base.Servers = 4
	base.Iters = 40
	base.Net = NetworkModel{Latency: 0.001, Bandwidth: 2e6}
	base.Sync = syncmodel.BSP()

	eps := base
	eps.UseEPS = true
	def := base
	def.UseEPS = false

	re, err := Run(eps)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := Run(def)
	if err != nil {
		t.Fatal(err)
	}
	if !(re.TotalTime < rd.TotalTime) {
		t.Errorf("EPS %.2fs not faster than default slicing %.2fs", re.TotalTime, rd.TotalTime)
	}
}

func TestSimSSPTableCollapsesAtScaleWithRawUpdates(t *testing.T) {
	train, test := dataset.CIFAR10Like(73)
	model, err := mlmodel.NewMLP(train.Dim, 64, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(workers int) Config {
		cfg := simBase(t)
		cfg.Arch = ArchSSPTable
		cfg.Model = model
		cfg.Train, cfg.Test = train, test
		cfg.Workers = workers
		cfg.Staleness = 3
		cfg.ScaleUpdates = false
		cfg.NewOptimizer = func() optimizer.Optimizer { return &optimizer.Momentum{LR: 0.02, Mu: 0.9} }
		cfg.BatchSize = 64 / workers
		cfg.Iters = 400
		return cfg
	}
	small, err := Run(mk(2))
	if err != nil {
		t.Fatal(err)
	}
	large, err := Run(mk(16))
	if err != nil {
		t.Fatal(err)
	}
	if small.FinalAcc < 0.6 {
		t.Errorf("2-worker accuracy %.3f, want ≥ 0.6", small.FinalAcc)
	}
	if large.FinalAcc > small.FinalAcc-0.25 {
		t.Errorf("16-worker accuracy %.3f did not collapse well below 2-worker %.3f", large.FinalAcc, small.FinalAcc)
	}
}

func TestSimSSPTableBlocksAndCacheSemantics(t *testing.T) {
	cfg := simBase(t)
	cfg.Arch = ArchSSPTable
	cfg.Staleness = 2
	cfg.ScaleUpdates = true
	cfg.Compute.CV = 0.5
	cfg.Iters = 120
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAcc < 0.4 {
		t.Errorf("accuracy %.3f", res.FinalAcc)
	}
	if res.Blocks == 0 {
		t.Error("no soft barriers recorded; cache semantics look broken")
	}
}

func TestSimLazyFreshVsSoftBarrierStale(t *testing.T) {
	// Lazy execution waits longer per DPR but returns fresher parameters;
	// under a straggler-heavy schedule it converges at least as well, and
	// the soft barrier shows more DPRs (it re-triggers every round).
	base := simBase(t)
	base.Iters = 200
	base.Sync = syncmodel.SSP(2)
	base.Compute.StraggleProb = 0.1
	base.Compute.StraggleFactor = 5

	lazy := base
	lazy.Drain = syncmodel.Lazy
	soft := base
	soft.Drain = syncmodel.SoftBarrier

	rl, err := Run(lazy)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(soft)
	if err != nil {
		t.Fatal(err)
	}
	if rl.DPRs == 0 || rs.DPRs == 0 {
		t.Fatalf("expected DPRs under stragglers (lazy=%d soft=%d)", rl.DPRs, rs.DPRs)
	}
	if !(rl.DPRs < rs.DPRs) {
		t.Errorf("lazy DPRs %d not below soft-barrier DPRs %d (Fig 9's shape)", rl.DPRs, rs.DPRs)
	}
}

func TestSimDynamicPSSPWithSignificance(t *testing.T) {
	cfg := simBase(t)
	cfg.Iters = 100
	sfs := make([]float64, cfg.Workers)
	cfg.Significances = sfs
	cfg.Sync = syncmodel.PSSPDynamicFunc(2, func(_ syncmodel.State, worker int) float64 {
		return sfs[worker]
	})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAcc < 0.4 {
		t.Errorf("accuracy %.3f", res.FinalAcc)
	}
	// The simulator must have filled in real significances.
	any := false
	for _, v := range sfs {
		if v > 0 && !math.IsNaN(v) {
			any = true
		}
	}
	if !any {
		t.Error("significances never written")
	}
}

func TestArchString(t *testing.T) {
	if ArchFluentPS.String() != "FluentPS" || ArchPSLite.String() != "PS-Lite" || ArchSSPTable.String() != "SSPtable" {
		t.Error("arch names wrong")
	}
	if Arch(9).String() == "" {
		t.Error("unknown arch must format")
	}
}
