# Tier-1 verification (what CI and every PR must keep green) plus the
# deeper checks the concurrent paths need.

GO ?= go

# Minimum statement coverage for the concurrency-critical packages
# (internal/core, internal/transport). They sit at ~84%/~87%; the floor
# catches a PR that lands untested request-lifecycle code.
COVER_FLOOR ?= 80.0

# Wall-clock ceiling for the fluentvet run: the lint step must stay fast
# enough to run on every build, and the budget catches an analyzer whose
# interprocedural pass goes quadratic (the suite currently finishes in
# ~1s; the ceiling leaves room for cold build caches).
LINT_BUDGET ?= 60s

.PHONY: verify build vet lint lint-baseline lint-self test race race-debug race-stress race-failover fuzz fuzz-smoke determinism scenarios scenarios-smoke fanout-smoke cover ci bench bench-paper

## verify: the tier-1 gate — vet, build, full test suite.
verify: vet build test

## lint: fluentvet, the project's own ten-analyzer static-analysis suite
## (poolcheck, lockorder, ctxcheck, telcheck, atomiccheck, codeccheck,
## handlercheck, fencecheck, leakcheck). Diff mode against the committed
## lint_baseline.json: only findings absent from the baseline fail.
## Exits non-zero on any new unsuppressed fail-severity finding or when
## analysis exceeds LINT_BUDGET; suppressions (//lint:ignore) are
## reported in a summary table and fail when unused.
lint:
	$(GO) run ./cmd/fluentvet -budget $(LINT_BUDGET) -baseline lint_baseline.json ./...

## lint-baseline: regenerate the committed finding baseline (review the
## diff — every new entry is accepted debt).
lint-baseline:
	$(GO) run ./cmd/fluentvet -write-baseline lint_baseline.json ./...

## lint-self: fluentvet pointed at its own engine and driver — the
## analyzers must satisfy the disciplines they enforce, with no baseline
## to hide behind.
lint-self:
	$(GO) run ./cmd/fluentvet -budget $(LINT_BUDGET) ./internal/lint/... ./cmd/fluentvet/...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

## race: the request-lifecycle and transport layers are goroutine-heavy
## (receive loops, retry timers, fault-injection timers, reconnects);
## run them under the race detector after touching any of it.
race:
	$(GO) test -race ./internal/core/... ./internal/transport/...

## race-debug: the race run with the fluentdebug assertion layer compiled
## in (internal/core/assert.go): V_train monotonicity, the SSP staleness
## bound on answered pulls, and the DPR-drain/push-condition coupling all
## panic on violation instead of silently corrupting a run.
race-debug:
	$(GO) test -race -tags fluentdebug ./internal/core/... ./internal/transport/...

## race-stress: the striped-store, batched-apply-engine, and RO-snapshot
## stress tests, repeated under the race detector with the fluentdebug
## assertion layer (V_train monotonicity, SSP staleness bound) compiled
## in. These are the only paths where multiple goroutines touch shard
## state concurrently — including readers pulling published snapshots
## while stripes are applied and republished — so they get more
## repetitions than the general race pass.
race-stress:
	$(GO) test -race -tags fluentdebug -count=5 \
		-run 'TestStripedShardConcurrentApply|TestBatchedApplyStress|TestBatchedApplyMatchesExpected|TestSnapshotROStress|TestHandleROOverMux' \
		./internal/kvstore/ ./internal/core/

## race-failover: the elastic-membership and failover integration tests,
## repeated under the race detector. The kill-primary test runs the full
## replicated-shard story over a lossy transport: a primary dies
## mid-training, its backup is promoted, and the exact-sum audit proves
## no update was lost or double-applied across the failover; the
## join/drain tests stream keys through view transitions while workers
## keep training.
race-failover:
	$(GO) test -race -count=5 -timeout 600s \
		-run 'TestFailoverKillServer|TestViewFencingRejectsStaleEpoch|TestLiveJoinServesDuringTransfer|TestDrainMovesKeysWithoutStopping' \
		./internal/core/

## fuzz: a short codec fuzz pass over every wire format — the message
## codec and framer, the mux stream-frame layer, the cluster-view codec,
## the replication-wave frame, and the stats/spec payloads (seed corpora
## cover v1/v2 ShardState and legacy 3-value Spec frames).
fuzz:
	$(GO) test ./internal/transport/ -run '^$$' -fuzz FuzzDecode -fuzztime 30s
	$(GO) test ./internal/transport/ -run '^$$' -fuzz FuzzReadFrame -fuzztime 30s
	$(GO) test ./internal/transport/ -run '^$$' -fuzz FuzzMuxFrame -fuzztime 30s
	$(GO) test ./internal/clusterview/ -run '^$$' -fuzz FuzzViewDecode -fuzztime 30s
	$(GO) test ./internal/core/ -run '^$$' -fuzz FuzzDecodeWave -fuzztime 30s
	$(GO) test ./internal/core/ -run '^$$' -fuzz FuzzDecodeShardState -fuzztime 30s
	$(GO) test ./internal/syncmodel/ -run '^$$' -fuzz FuzzDecodeSpec -fuzztime 30s

## fuzz-smoke: the CI-sized fuzz pass — 10s per codec target, enough to
## replay the seed corpus and shake the boundary cases.
fuzz-smoke:
	$(GO) test ./internal/transport/ -run '^$$' -fuzz FuzzDecode -fuzztime 10s
	$(GO) test ./internal/transport/ -run '^$$' -fuzz FuzzReadFrame -fuzztime 10s
	$(GO) test ./internal/transport/ -run '^$$' -fuzz FuzzMuxFrame -fuzztime 10s
	$(GO) test ./internal/clusterview/ -run '^$$' -fuzz FuzzViewDecode -fuzztime 10s
	$(GO) test ./internal/core/ -run '^$$' -fuzz FuzzDecodeWave -fuzztime 10s
	$(GO) test ./internal/core/ -run '^$$' -fuzz FuzzDecodeShardState -fuzztime 10s
	$(GO) test ./internal/syncmodel/ -run '^$$' -fuzz FuzzDecodeSpec -fuzztime 10s

## determinism: the bit-identical replay properties, repeated under the
## race detector — the scenario simulator (same spec + seed ⇒ identical
## Result, whatever hazards fire) and the apply engine (same workload ⇒
## identical parameters whatever ApplyWorkers is set to).
determinism:
	$(GO) test -race -count=5 -run 'TestScenarioDeterminism' ./internal/sim/
	$(GO) test -race -count=5 -run 'TestApplyWorkersDeterminism' ./internal/core/

## scenarios: the full-scale scenario matrix — every sync policy ×
## topology × fault plan at up to 1024 simulated workers, 5 seed
## replicates per cell (~30s). The JSON scorecard lands in
## BENCH_scenarios.json; the per-group adaptive-vs-best-fixed digest
## prints to stderr.
scenarios:
	$(GO) run ./cmd/fluentbench -scenarios > BENCH_scenarios.json

## scenarios-smoke: the CI tier of the matrix — the same grid at pruned
## scale with the golden-score regression gate and the ≥80% adaptive
## dominance gate (see internal/experiments/scenarios_test.go).
scenarios-smoke:
	$(GO) test -count=1 -run 'TestScenario' ./internal/experiments/

## fanout-smoke: the read-tier acceptance gates at CI scale — the quick
## fan-out matrix (RO snapshot pulls vs locked data-plane pulls against
## one pushing trainer) must show RO throughput scaling ≥4× from 1 to 64
## readers with the trainer's push p99 within 1.25× of the reader-free
## baseline.
fanout-smoke:
	FLUENTPS_FANOUT_STRICT=1 $(GO) test -count=1 -run 'TestFanoutSmoke' ./internal/experiments/

## cover: statement coverage for the request-lifecycle packages, failing
## below COVER_FLOOR percent.
cover:
	@for pkg in ./internal/core/ ./internal/transport/; do \
		out=$$($(GO) test -cover $$pkg | tail -1); \
		echo "$$out"; \
		pct=$$(echo "$$out" | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "no coverage reported for $$pkg"; exit 1; fi; \
		if ! awk -v p="$$pct" -v f="$(COVER_FLOOR)" 'BEGIN{exit !(p+0 >= f+0)}'; then \
			echo "FAIL: coverage $$pct% of $$pkg is below the $(COVER_FLOOR)% floor"; exit 1; \
		fi; \
	done

## ci: the full pre-merge gate — vet + build + tests, fluentvet in
## baseline-diff mode plus its self-analysis pass, the race detector over
## everything (plus a fluentdebug assertion pass), the determinism replay
## properties, the scenario-matrix smoke tier with its golden and
## dominance gates, a codec fuzz smoke, the adaptive-regret acceptance
## gate, and the coverage floor.
ci: verify
	$(MAKE) lint
	$(MAKE) lint-self
	$(GO) test -count=1 -run 'TestAdaptiveSweep' ./internal/experiments/
	$(MAKE) scenarios-smoke
	$(MAKE) fanout-smoke
	$(GO) test -race ./...
	$(MAKE) race-debug
	$(MAKE) race-stress
	$(MAKE) race-failover
	$(MAKE) determinism
	$(MAKE) fuzz-smoke
	$(MAKE) cover

## bench: the hot-path microbenchmarks — encode→send→apply with pooled
## frames and the end-to-end push/pull step — with allocation counts.
## Machine-readable results land in BENCH_hotpath.json (go test -json);
## BENCH_telemetry.json isolates the telemetry overhead: the same
## push/pull step with a live registry vs the Nop sink vs no telemetry,
## plus the per-instrument costs (counter add, histogram observe).
## BENCH_apply.json contrasts push-apply throughput with the serial apply
## loop (ApplyWorkers=1) against the wave-batched engine (ApplyWorkers=4)
## — the batched path must hold a ≥2x edge on large segments.
## BENCH_adaptive.json records the adaptive-vs-fixed regret sweep: for each
## heterogeneous trace, the timed regret and throughput of Adaptive against
## every fixed preset (BSP, ASP, SSP(s) swept) plus the hindsight-best ratio.
## BENCH_scenarios.json is the full-scale scenario-matrix scorecard (see
## `make scenarios`).
## BENCH_fanout.json is the read-tier fan-out sweep: RO snapshot pulls vs
## locked data-plane pulls at 1..64 readers, with the scaling and push-p99
## acceptance gates.
bench:
	$(GO) test -run '^$$' -bench 'PushPullHotPath$$|FrameRoundTrip|WriteFrame|DecodeInto' \
		-benchmem -json ./internal/core/ ./internal/transport/ > BENCH_hotpath.json
	$(GO) test -run '^$$' -bench 'PushPullHotPath|CounterInc|GaugeSet|HistogramObserve' \
		-benchmem -json ./internal/core/ ./internal/telemetry/ > BENCH_telemetry.json
	$(GO) test -run '^$$' -bench 'ApplyThroughput|AxpyBatch' -benchtime 2s \
		-benchmem -json ./internal/core/ ./internal/mathx/ > BENCH_apply.json
	$(GO) run ./cmd/fluentbench -adaptive > BENCH_adaptive.json
	$(GO) run ./cmd/fluentbench -scenarios > BENCH_scenarios.json
	$(GO) run ./cmd/fluentbench -fanout > BENCH_fanout.json
	@sed -n 's/.*"Output":"\(.*\)".*/\1/p' BENCH_hotpath.json BENCH_telemetry.json BENCH_apply.json | tr -d '\n' | \
		sed 's/\\n/\n/g; s/\\t/\t/g' | grep 'allocs/op'

## bench-paper: every benchmark in the repo once over (smoke, not timing).
bench-paper:
	$(GO) test -bench . -benchtime 1x ./...
