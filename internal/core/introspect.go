package core

import (
	"context"
	"fmt"

	"github.com/fluentps/fluentps/internal/syncmodel"
	"github.com/fluentps/fluentps/internal/transport"
)

// ShardState is the synchronization state a server exposes — the paper's
// SetcondPull/SetcondPush interfaces "expose details of the
// synchronization state, e.g., the progress of fastest/slowest worker,
// the number of workers that have pushed gradients in a specified
// iteration", so that developers can build conditions (and operators can
// watch a live cluster).
type ShardState struct {
	VTrain       int
	MinProgress  int
	MaxProgress  int
	CountAtRound int // workers that already pushed the current round
	Buffered     int // DPRs currently waiting
	Pulls        int
	Pushes       int
	DPRs         int
	Dropped      int
	DedupHits    int // duplicate pushes/pulls absorbed by the server
	Keys         int

	// Live synchronization model (the *adapted* parameters for
	// self-tuning models, not the configured initial ones). ModelKind is a
	// syncmodel.Kind; zero means a closure model with no wire spec.
	ModelKind int
	ModelS    int
	ModelMin  int
	ModelMax  int
	ModelC    float64
	// Switches counts sync-model kind changes since the server started
	// (admin set-cond or the adaptive controller).
	Switches int

	// Read-optimized serving tier (v3 fields): the published snapshot
	// epoch and how many read-only pulls have been served from snapshots.
	SnapshotEpoch int
	ROPulls       int
}

// Model renders the live synchronization model for operators, e.g.
// "SSP(s=2)" or "Adaptive(s0=4,[1,8])" with s0 the current threshold.
func (st ShardState) Model() string {
	spec := syncmodel.Spec{
		Kind: syncmodel.Kind(st.ModelKind),
		S:    st.ModelS, C: st.ModelC, Min: st.ModelMin, Max: st.ModelMax,
	}
	if spec.Kind == 0 {
		return "custom"
	}
	if m, err := spec.Build(); err == nil {
		return m.Name
	}
	return spec.Kind.String()
}

// Payload lengths of the stats response: v1 predates the model fields,
// v2 the read-tier fields.
const (
	shardStateLenV1 = 11
	shardStateLenV2 = 17
	shardStateLen   = 19
)

// encode packs the state for the wire, appending to dst (pass a pooled
// message's Vals[:0] to avoid allocation).
func (st ShardState) encode(dst []float64) []float64 {
	return append(dst,
		float64(st.VTrain), float64(st.MinProgress), float64(st.MaxProgress),
		float64(st.CountAtRound), float64(st.Buffered),
		float64(st.Pulls), float64(st.Pushes), float64(st.DPRs),
		float64(st.Dropped), float64(st.DedupHits), float64(st.Keys),
		float64(st.ModelKind), float64(st.ModelS), float64(st.ModelMin),
		float64(st.ModelMax), st.ModelC, float64(st.Switches),
		float64(st.SnapshotEpoch), float64(st.ROPulls),
	)
}

func decodeShardState(vals []float64) (ShardState, error) {
	// v1 (11-value) and v2 (17-value) payloads from older servers still
	// decode; the fields they predate stay zero.
	if len(vals) != shardStateLen && len(vals) != shardStateLenV2 && len(vals) != shardStateLenV1 {
		return ShardState{}, fmt.Errorf("core: stats payload has %d values, want %d (or legacy %d/%d)",
			len(vals), shardStateLen, shardStateLenV2, shardStateLenV1)
	}
	st := ShardState{
		VTrain:       int(vals[0]),
		MinProgress:  int(vals[1]),
		MaxProgress:  int(vals[2]),
		CountAtRound: int(vals[3]),
		Buffered:     int(vals[4]),
		Pulls:        int(vals[5]),
		Pushes:       int(vals[6]),
		DPRs:         int(vals[7]),
		Dropped:      int(vals[8]),
		DedupHits:    int(vals[9]),
		Keys:         int(vals[10]),
	}
	if len(vals) >= shardStateLenV2 {
		st.ModelKind = int(vals[11])
		st.ModelS = int(vals[12])
		st.ModelMin = int(vals[13])
		st.ModelMax = int(vals[14])
		st.ModelC = vals[15]
		st.Switches = int(vals[16])
	}
	if len(vals) >= shardStateLen {
		st.SnapshotEpoch = int(vals[17])
		st.ROPulls = int(vals[18])
	}
	return st, nil
}

// handleStats answers a MsgStats query from the server's message loop
// (where touching the controller is safe).
func (s *Server) handleStats(msg *transport.Message) error {
	stats := s.ctrl.Stats()
	state := ShardState{
		VTrain:       s.ctrl.VTrain(),
		MinProgress:  s.ctrl.MinProgress(),
		MaxProgress:  s.ctrl.MaxProgress(),
		CountAtRound: s.ctrl.CountAt(s.ctrl.VTrain()),
		Buffered:     s.ctrl.Buffered(),
		Pulls:        stats.Pulls,
		Pushes:       stats.Pushes,
		DPRs:         stats.DPRs,
		Dropped:      stats.DroppedPushes,
		DedupHits:    s.dedupHits,
		Keys:         len(s.keys),
		Switches:     s.switches,
		ROPulls:      int(s.roServed.Load()),
	}
	if snap := s.shard.ROSnapshot(); snap != nil {
		state.SnapshotEpoch = int(snap.Epoch)
	}
	if spec, ok := s.ctrl.Spec(); ok {
		state.ModelKind = int(spec.Kind)
		state.ModelS = spec.S
		state.ModelMin = spec.Min
		state.ModelMax = spec.Max
		state.ModelC = spec.C
	}
	resp := transport.NewMessage()
	resp.Type = transport.MsgStatsResp
	resp.To = msg.From
	resp.Seq = msg.Seq
	resp.Vals = state.encode(resp.Vals[:0])
	// Stats are advisory: an unreachable inquirer must not take the
	// server down.
	_ = transport.SendOwned(s.ep, resp)
	return nil
}

// QueryStats fetches a live server's synchronization state from an admin
// endpoint (one not used by a Worker's receive loop). ctx bounds the
// wait for the server's reply; nil means wait forever.
func QueryStats(ctx context.Context, ep transport.Endpoint, server int) (ShardState, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	msg := &transport.Message{Type: transport.MsgStats, To: transport.Server(server), Seq: 7}
	if err := ep.Send(msg); err != nil {
		return ShardState{}, err
	}
	for {
		resp, err := recvCtx(ctx, ep)
		if err != nil {
			return ShardState{}, err
		}
		if resp.Type != transport.MsgStatsResp {
			transport.ReleaseReceived(resp)
			continue // tolerate stray traffic on shared admin endpoints
		}
		st, err := decodeShardState(resp.Vals)
		transport.ReleaseReceived(resp)
		return st, err
	}
}
