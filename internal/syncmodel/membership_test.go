package syncmodel

import "testing"

// TestDepartClosesWedgedRound: a BSP round blocked on one worker's missing
// push must close when that worker departs — the remaining quorum has fully
// pushed, so V_train advances and the buffered DPRs drain.
func TestDepartClosesWedgedRound(t *testing.T) {
	c := New(3, BSP(), Lazy, nil)
	// Workers 0 and 1 push round 0 and pull at progress 0 (buffered: BSP
	// answers a pull only after the round closes, progress < V_train).
	for _, w := range []int{0, 1} {
		if apply, _ := c.OnPush(w, 0); !apply {
			t.Fatalf("push by %d rejected", w)
		}
		if ready := c.OnPull(w, 0, w); ready {
			t.Fatalf("BSP answered worker %d's pull before the round closed", w)
		}
	}
	if c.VTrain() != 0 {
		t.Fatalf("V_train advanced to %d with worker 2 missing", c.VTrain())
	}
	dropped, released := c.Depart(2)
	if len(dropped) != 0 {
		t.Fatalf("departed worker had %d buffered pulls, want 0", len(dropped))
	}
	if c.VTrain() != 1 {
		t.Fatalf("V_train = %d after depart, want 1 (round closed by quorum shrink)", c.VTrain())
	}
	if len(released) != 2 {
		t.Fatalf("depart released %d pulls, want 2", len(released))
	}
	if c.NumWorkers() != 2 || c.TotalWorkers() != 3 {
		t.Fatalf("NumWorkers=%d TotalWorkers=%d, want 2/3", c.NumWorkers(), c.TotalWorkers())
	}
}

// TestDepartDropsOwnBufferedPulls: the departing worker's own DPRs are
// returned as dropped, not answered — nobody is listening anymore.
func TestDepartDropsOwnBufferedPulls(t *testing.T) {
	c := New(2, BSP(), Lazy, nil)
	if ready := c.OnPull(1, 1, "tok"); ready {
		t.Fatal("pull ahead of V_train answered under BSP")
	}
	dropped, released := c.Depart(1)
	if len(dropped) != 1 || dropped[0].Worker != 1 || dropped[0].Token != "tok" {
		t.Fatalf("dropped = %+v, want worker 1's pull", dropped)
	}
	if len(released) != 0 {
		t.Fatalf("released %d pulls from an empty quorum round, want 0", len(released))
	}
	if c.Buffered() != 0 {
		t.Fatalf("%d pulls still buffered after depart", c.Buffered())
	}
}

// TestDepartLastWorkerDoesNotSpin: departing the only active worker must
// not advance V_train — "0 of 0 pushed" would otherwise satisfy pushAll
// forever.
func TestDepartLastWorkerDoesNotSpin(t *testing.T) {
	c := New(1, BSP(), Lazy, nil)
	c.Depart(0)
	if c.NumWorkers() != 0 {
		t.Fatalf("NumWorkers = %d, want 0", c.NumWorkers())
	}
	if c.VTrain() != 0 {
		t.Fatalf("V_train = %d after last depart, want 0", c.VTrain())
	}
	if c.MinProgress() != -1 || c.MaxProgress() != -1 {
		t.Fatalf("progress extrema %d/%d over empty membership, want -1/-1", c.MinProgress(), c.MaxProgress())
	}
}

// TestRejoinResumePoint: a rejoining worker resumes at
// max(V_train, its own progress+1) so it neither wedges a closed round nor
// re-pushes rounds it already contributed to.
func TestRejoinResumePoint(t *testing.T) {
	c := New(3, SSP(4), Lazy, nil)
	// Worker 1 races ahead to progress 2, then leaves; the quorum of the
	// two remaining workers has pushed nothing, so the clock stays put.
	for i := 0; i < 3; i++ {
		c.OnPush(1, i)
	}
	c.Depart(1)
	if got := c.VTrain(); got != 0 {
		t.Fatalf("V_train = %d with workers 0/2 owing round 0, want 0", got)
	}
	if got := c.Rejoin(1); got != 3 {
		t.Fatalf("fast worker resumes at %d, want 3 (own progress+1)", got)
	}
	c.Depart(1)
	// Workers 0 and 2 grind through rounds 0..4, lapping worker 1.
	for i := 0; i <= 4; i++ {
		c.OnPush(0, i)
		c.OnPush(2, i)
	}
	if c.VTrain() != 5 {
		t.Fatalf("V_train = %d, want 5", c.VTrain())
	}
	if got := c.Rejoin(1); got != 5 {
		t.Fatalf("lapped worker resumes at %d, want 5 (V_train)", got)
	}
	if c.NumWorkers() != 3 {
		t.Fatalf("NumWorkers = %d after rejoin, want 3", c.NumWorkers())
	}
}

// TestRejoinedWorkerCountsOnce: after a depart/rejoin cycle the clock is
// exact — a BSP round closes with exactly one push from each active worker
// and the rejoiner cannot close a round by re-pushing an old iteration.
func TestRejoinedWorkerCountsOnce(t *testing.T) {
	c := New(2, BSP(), Lazy, nil)
	c.OnPush(0, 0)
	c.OnPush(1, 0)
	if c.VTrain() != 1 {
		t.Fatalf("V_train = %d, want 1", c.VTrain())
	}
	c.Depart(1)
	resume := c.Rejoin(1)
	if resume != 1 {
		t.Fatalf("resume = %d, want 1", resume)
	}
	// A duplicate push for the closed round 0 must not close round 1.
	c.OnPush(1, 0)
	if c.VTrain() != 1 {
		t.Fatalf("V_train = %d after stale re-push, want 1", c.VTrain())
	}
	c.OnPush(1, resume)
	if c.VTrain() != 1 {
		t.Fatalf("V_train = %d with worker 0 still owing round 1, want 1", c.VTrain())
	}
	c.OnPush(0, 1)
	if c.VTrain() != 2 {
		t.Fatalf("V_train = %d, want 2", c.VTrain())
	}
}

// TestDriverDepartClearsForecast: a departed worker must drop out of the
// forecast vector entirely — otherwise the silent-worker floor makes it an
// ever-worsening phantom straggler.
func TestDriverDepartClearsForecast(t *testing.T) {
	d := NewAdaptiveDriver(2, AdaptiveConfig{})
	d.ObservePullAnswer(1, 10)
	d.ObservePush(1, 12)
	d.ObservePullAnswer(1, 12.5)
	if f := d.Forecasts(100)[1]; f <= 80 {
		t.Fatalf("silent-worker floor inactive: forecast %v at t=100", f)
	}
	d.Depart(1)
	if f := d.Forecasts(200)[1]; f != 0 {
		t.Fatalf("departed worker still forecast at %v, want 0 (unknown)", f)
	}
	d.Rejoin(1)
	if f := d.Forecasts(300)[1]; f != 0 {
		t.Fatalf("rejoined worker inherited stale forecast %v, want 0", f)
	}
	// Fresh observations rebuild the forecast from scratch.
	d.ObservePullAnswer(1, 300)
	d.ObservePush(1, 301)
	if f := d.Forecasts(301)[1]; f != 1 {
		t.Fatalf("rebuilt forecast = %v, want 1 (single gap)", f)
	}
}
