// Command fluentps-scheduler runs the FluentPS liveness scheduler of a
// real TCP cluster. Unlike PS-Lite's scheduler it carries no
// synchronization state — it waits for the expected nodes to register and
// then just tracks heartbeats.
//
// Example (2 servers, 2 workers on localhost):
//
//	fluentps-scheduler -scheduler 127.0.0.1:7070 \
//	  -servers 127.0.0.1:7071,127.0.0.1:7072 \
//	  -workerAddrs 127.0.0.1:7081,127.0.0.1:7082
package main

import (
	"context"
	"flag"
	"log"

	"github.com/fluentps/fluentps/internal/clustercfg"
	"github.com/fluentps/fluentps/internal/core"
	"github.com/fluentps/fluentps/internal/transport"
)

func main() {
	var flags clustercfg.Flags
	flags.Register(flag.CommandLine)
	flag.Parse()

	cluster, err := flags.Cluster()
	if err != nil {
		log.Fatal(err)
	}
	// The scheduler carries no data-plane instruments, but the debug
	// endpoint still exposes the process-wide pool gauges and serves as a
	// liveness probe.
	_, stopTel, err := flags.StartTelemetry("fluentps-scheduler", log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	defer stopTel()
	ep, err := transport.ListenTCP(transport.Scheduler(), cluster.SchedulerAddr, cluster.Book())
	if err != nil {
		log.Fatal(err)
	}
	defer ep.Close()

	sched, err := core.NewScheduler(ep, len(cluster.ServerAddrs), cluster.Workers())
	if err != nil {
		log.Fatal(err)
	}
	// The scheduler owns the key-space division (§III-A): it computes the
	// slicing once and ships it to every node in the registration ack.
	work, err := flags.Workload()
	if err != nil {
		log.Fatal(err)
	}
	sync, err := flags.SyncConfig(cluster.Workers())
	if err != nil {
		log.Fatal(err)
	}
	layout, assign, err := sync.Slicing(work.Model, len(cluster.ServerAddrs))
	if err != nil {
		log.Fatal(err)
	}
	view := flags.BootstrapView(cluster, assign)
	sched.DistributeClusterView(view)
	log.Printf("fluentps-scheduler: listening on %s, expecting %d servers and %d workers; distributing view epoch %d (%d keys over %d servers, %d replicas)",
		ep.Addr(), len(cluster.ServerAddrs), cluster.Workers(), view.Epoch, layout.NumKeys(), len(cluster.ServerAddrs), view.Replicas)
	if err := sched.Run(context.Background()); err != nil {
		log.Fatal(err)
	}
	log.Printf("fluentps-scheduler: shut down")
}
