package kvstore

import (
	"bytes"
	"math"
	"testing"

	"github.com/fluentps/fluentps/internal/keyrange"
)

func TestCheckpointRoundTrip(t *testing.T) {
	layout := keyrange.MustLayout([]int{3, 5, 2, 7})
	s := NewShard(layout, []keyrange.Key{0, 2, 3}, func(k keyrange.Key, seg []float64) {
		for i := range seg {
			seg[i] = float64(k)*100 + float64(i)
		}
	})
	// Exercise update counters and special float values.
	if err := s.ApplyGrad(2, []float64{math.Inf(1), -0.0}, 1); err != nil {
		t.Fatal(err)
	}
	s.ApplyGrad(2, []float64{0, 0}, 1)

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadShard(&buf, layout)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored.Keys()) != 3 {
		t.Fatalf("restored %d keys", len(restored.Keys()))
	}
	for _, k := range s.Keys() {
		want, _ := s.Segment(k)
		got, err := restored.Segment(k)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("key %d scalar %d: %v != %v", k, i, got[i], want[i])
			}
		}
		if restored.Updates(k) != s.Updates(k) {
			t.Errorf("key %d updates %d != %d", k, restored.Updates(k), s.Updates(k))
		}
	}
	if !restored.Has(0) || restored.Has(1) {
		t.Error("restored ownership wrong")
	}
}

func TestCheckpointEmptyShard(t *testing.T) {
	layout := keyrange.MustLayout([]int{3})
	s := NewShard(layout, nil, nil)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadShard(&buf, layout)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored.Keys()) != 0 {
		t.Errorf("restored %d keys from empty shard", len(restored.Keys()))
	}
}

func TestCheckpointRejectsCorruption(t *testing.T) {
	layout := keyrange.MustLayout([]int{3, 5})
	s := NewShard(layout, []keyrange.Key{0, 1}, nil)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }},
		{"bad version", func(b []byte) []byte { b[4] = 99; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)-5] }},
		{"key out of layout", func(b []byte) []byte { b[12] = 200; return b }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			data := c.mutate(append([]byte(nil), good...))
			if _, err := LoadShard(bytes.NewReader(data), layout); err == nil {
				t.Error("corrupt checkpoint accepted")
			}
		})
	}
}

func TestCheckpointWrongLayout(t *testing.T) {
	layoutA := keyrange.MustLayout([]int{3, 5})
	layoutB := keyrange.MustLayout([]int{4, 5}) // key 0 size differs
	s := NewShard(layoutA, []keyrange.Key{0}, nil)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadShard(&buf, layoutB); err == nil {
		t.Error("size-mismatched layout accepted")
	}
}

func TestCheckpointRestoredShardIsUsable(t *testing.T) {
	layout := keyrange.MustLayout([]int{2, 2})
	s := NewShard(layout, []keyrange.Key{0, 1}, nil)
	s.ApplyGrad(0, []float64{1, 1}, 1)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadShard(&buf, layout)
	if err != nil {
		t.Fatal(err)
	}
	// Training continues on the restored shard.
	if err := restored.ApplyGrad(0, []float64{1, 1}, 1); err != nil {
		t.Fatal(err)
	}
	seg, _ := restored.Segment(0)
	if seg[0] != 2 {
		t.Errorf("restored shard value %v, want 2", seg[0])
	}
	if restored.Updates(0) != 2 {
		t.Errorf("updates = %d, want 2 (1 before + 1 after restore)", restored.Updates(0))
	}
}

// TestSaveKeysAbsorbTransfer covers the live key-transfer path: a subset
// stream from a donor absorbed into a differently-striped recipient, with
// values AND update counters preserved (the raw-segment migration this
// replaces dropped the counters).
func TestSaveKeysAbsorbTransfer(t *testing.T) {
	layout := keyrange.MustLayout([]int{3, 5, 2, 7, 4})
	donor := NewStripedShard(layout, []keyrange.Key{0, 1, 2}, func(k keyrange.Key, seg []float64) {
		for i := range seg {
			seg[i] = float64(k) + float64(i)/10
		}
	}, 8)
	for i := 0; i < 5; i++ {
		if err := donor.ApplyGrad(1, []float64{1, 1, 1, 1, 1}, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	recipient := NewStripedShard(layout, []keyrange.Key{3, 4}, func(k keyrange.Key, seg []float64) {}, 1)

	var buf bytes.Buffer
	if err := donor.SaveKeys(&buf, []keyrange.Key{1, 2}); err != nil {
		t.Fatal(err)
	}
	absorbed, err := recipient.Absorb(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(absorbed) != 2 || absorbed[0] != 1 || absorbed[1] != 2 {
		t.Fatalf("absorbed %v", absorbed)
	}
	if recipient.Updates(1) != 5 {
		t.Fatalf("update counter lost in transfer: %d", recipient.Updates(1))
	}
	want, _ := donor.Segment(1)
	got, err := recipient.Segment(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scalar %d: %v != %v", i, got[i], want[i])
		}
	}

	// Absorbing a key the shard already owns fails; absorbing an
	// unowned-key stream into the donor still works (subset semantics).
	buf.Reset()
	if err := donor.SaveKeys(&buf, []keyrange.Key{2}); err != nil {
		t.Fatal(err)
	}
	if _, err := recipient.Absorb(&buf); err == nil {
		t.Fatal("absorbing an already-owned key should fail")
	}
	// SaveKeys on a key the shard does not own fails loudly.
	if err := donor.SaveKeys(&buf, []keyrange.Key{4}); err == nil {
		t.Fatal("SaveKeys of unowned key should succeed? no — must fail")
	}
}

// TestCheckpointRestripeRoundTrip: a snapshot taken from one striping
// restores bit-exactly into any other (the stream is stripe-agnostic),
// including update counters — the regression the unified transfer format
// must hold across server restarts with different -applyStripes.
func TestCheckpointRestripeRoundTrip(t *testing.T) {
	layout, err := keyrange.EPSLayout(257, 16)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]keyrange.Key, layout.NumKeys())
	for i := range keys {
		keys[i] = keyrange.Key(i)
	}
	for _, fromStripes := range []int{1, 8} {
		for _, toStripes := range []int{1, 4, 64} {
			src := NewStripedShard(layout, keys, func(k keyrange.Key, seg []float64) {
				for i := range seg {
					seg[i] = float64(k)*1000 + float64(i)
				}
			}, fromStripes)
			grad := make([]float64, layout.KeySize(5))
			for i := range grad {
				grad[i] = 0.25
			}
			for n := 0; n < 3; n++ {
				if err := src.ApplyGrad(5, grad, 2); err != nil {
					t.Fatal(err)
				}
			}
			var buf bytes.Buffer
			if err := src.Save(&buf); err != nil {
				t.Fatal(err)
			}
			dst, err := LoadStripedShard(&buf, layout, toStripes)
			if err != nil {
				t.Fatalf("%d→%d stripes: %v", fromStripes, toStripes, err)
			}
			for _, k := range keys {
				want, _ := src.Segment(k)
				got, err := dst.Segment(k)
				if err != nil {
					t.Fatalf("%d→%d stripes key %d: %v", fromStripes, toStripes, k, err)
				}
				for i := range want {
					if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
						t.Fatalf("%d→%d stripes key %d scalar %d differs", fromStripes, toStripes, k, i)
					}
				}
				if dst.Updates(k) != src.Updates(k) {
					t.Fatalf("%d→%d stripes key %d updates %d != %d",
						fromStripes, toStripes, k, dst.Updates(k), src.Updates(k))
				}
			}
		}
	}
}

func TestApplyDeltaAndSetWithUpdates(t *testing.T) {
	layout := keyrange.MustLayout([]int{2, 3})
	s := NewShard(layout, []keyrange.Key{0, 1}, func(k keyrange.Key, seg []float64) {})
	if err := s.ApplyDelta(0, []float64{1, 2}, 3); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyDelta(0, []float64{0.5, 0.5}, 2); err != nil {
		t.Fatal(err)
	}
	seg, _ := s.Segment(0)
	if seg[0] != 1.5 || seg[1] != 2.5 || s.Updates(0) != 5 {
		t.Fatalf("delta apply wrong: %v updates=%d", seg, s.Updates(0))
	}
	if err := s.SetWithUpdates(1, []float64{7, 8, 9}, 42); err != nil {
		t.Fatal(err)
	}
	seg, _ = s.Segment(1)
	if seg[0] != 7 || s.Updates(1) != 42 {
		t.Fatalf("set-with-updates wrong: %v updates=%d", seg, s.Updates(1))
	}
	if err := s.ApplyDelta(9, []float64{1}, 1); err == nil {
		t.Fatal("unknown key should fail")
	}
	if err := s.ApplyDelta(0, []float64{1}, 1); err == nil {
		t.Fatal("dim mismatch should fail")
	}
	if err := s.SetWithUpdates(0, []float64{1}, 1); err == nil {
		t.Fatal("dim mismatch should fail")
	}
}
