package core

import (
	"testing"
	"time"

	"github.com/fluentps/fluentps/internal/syncmodel"
	"github.com/fluentps/fluentps/internal/transport"
)

// TestRuntimeModelSwitch exercises the paper's runtime-flexibility claim
// end to end over the transport: a worker blocked under SSP is released
// the moment an admin switches the shard to ASP.
func TestRuntimeModelSwitch(t *testing.T) {
	net, srv, layout, assign := testServer(t, syncmodel.SSP(1), syncmodel.Lazy, 2)
	w0, err := NewWorker(net.Endpoint(transport.Worker(0)), WorkerConfig{Rank: 0, Layout: layout, Assignment: assign})
	if err != nil {
		t.Fatal(err)
	}
	defer w0.Close()

	// Worker 0 runs ahead and blocks on its second pull.
	if err := w0.SPush(tctx, 0, make([]float64, 5)); err != nil {
		t.Fatal(err)
	}
	params := make([]float64, 5)
	if err := w0.SPull(tctx, 0, params); err != nil {
		t.Fatal(err)
	}
	if err := w0.SPush(tctx, 1, make([]float64, 5)); err != nil {
		t.Fatal(err)
	}
	blocked := make(chan error, 1)
	go func() { blocked <- w0.SPull(tctx, 1, params) }()
	select {
	case <-blocked:
		t.Fatal("pull should be delayed under SSP(1)")
	case <-time.After(50 * time.Millisecond):
	}

	// Admin switches the shard to ASP at runtime.
	admin := net.Endpoint(transport.Worker(9))
	defer admin.Close()
	if err := SetCondition(tctx, admin, 0, syncmodel.Spec{Kind: syncmodel.KindASP}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-blocked:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked pull not released by the model switch")
	}
	if st := srv.Stats(); st.DPRs != 1 {
		t.Errorf("DPRs = %d, want exactly the one pre-switch delay", st.DPRs)
	}
	// Post-switch, the worker free-runs.
	for i := 2; i < 6; i++ {
		if err := w0.SPush(tctx, i, make([]float64, 5)); err != nil {
			t.Fatal(err)
		}
		if err := w0.SPull(tctx, i, params); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSetConditionValidation(t *testing.T) {
	net, _, _, _ := testServer(t, syncmodel.BSP(), syncmodel.Lazy, 1)
	admin := net.Endpoint(transport.Worker(8))
	defer admin.Close()
	if err := SetCondition(tctx, admin, 0, syncmodel.Spec{Kind: 99}); err == nil {
		t.Error("invalid spec accepted")
	}
}
