package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ctxcheck enforces the context discipline:
//
//  1. No context.Background()/context.TODO() outside package main and
//     _test.go files. The one blessed exception is the nil-fallback
//     idiom at the top of an API that accepts an optional context:
//
//     if ctx == nil { ctx = context.Background() }
//
//  2. Exported functions that synchronously drain a transport Endpoint
//     (a direct Recv call, not inside a spawned goroutine) must accept a
//     context.Context parameter — a blocking exported API with no
//     cancellation path wedges its caller forever on a dead peer.
//
//  3. A context.Context parameter must actually be used ("accept and
//     actually thread"): a ctx that is accepted and dropped silently
//     advertises cancellation it does not deliver.

// CtxCheck returns the ctxcheck analyzer.
func CtxCheck() *Analyzer {
	return &Analyzer{
		Name: "ctxcheck",
		Doc:  "blocking exported APIs accept and thread context.Context; no context.Background() outside main/tests",
		Run:  runCtxCheck,
	}
}

func runCtxCheck(pass *Pass) {
	isMain := pass.Pkg.Types.Name() == "main"
	for _, f := range pass.Pkg.Files {
		if !isMain {
			checkBackgroundCalls(pass, f)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			if !pass.Pkg.IsTestPos(fd.Pos()) {
				checkCtxParamUsed(pass, fd)
				if !isMain {
					checkBlockingExported(pass, fd)
				}
			}
			return false
		})
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	path, name := namedTypePath(t)
	return path == "context" && name == "Context"
}

// checkBackgroundCalls flags context.Background()/TODO() outside the
// nil-fallback idiom and test files.
func checkBackgroundCalls(pass *Pass, f *ast.File) {
	info := pass.Pkg.Info
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var fn string
		switch {
		case isPkgCall(info, call, "context", "Background"):
			fn = "context.Background"
		case isPkgCall(info, call, "context", "TODO"):
			fn = "context.TODO"
		default:
			return true
		}
		if pass.Pkg.IsTestPos(call.Pos()) {
			return true
		}
		if isNilFallback(info, stack) {
			return true
		}
		pass.Reportf("ctxcheck", call.Pos(),
			"%s() in library code severs the caller's cancellation chain; accept a context.Context instead", fn)
		return true
	})
}

// isNilFallback recognizes `if ctx == nil { ctx = context.Background() }`
// from the Background() call's ancestor stack: an assignment to a single
// context variable, directly inside an if whose condition compares that
// same variable to nil.
func isNilFallback(info *types.Info, stack []ast.Node) bool {
	// stack ends with the CallExpr; expect [... IfStmt BlockStmt AssignStmt CallExpr].
	if len(stack) < 4 {
		return false
	}
	asg, ok := stack[len(stack)-2].(*ast.AssignStmt)
	if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	lhs, ok := ast.Unparen(asg.Lhs[0]).(*ast.Ident)
	if !ok {
		return false
	}
	target, ok := info.Uses[lhs].(*types.Var)
	if !ok || !isContextType(target.Type()) {
		return false
	}
	ifStmt, ok := stack[len(stack)-4].(*ast.IfStmt)
	if !ok {
		return false
	}
	cond, ok := ast.Unparen(ifStmt.Cond).(*ast.BinaryExpr)
	if !ok || cond.Op != token.EQL {
		return false
	}
	for _, side := range [...]ast.Expr{cond.X, cond.Y} {
		if id, ok := ast.Unparen(side).(*ast.Ident); ok {
			if info.Uses[id] == target {
				return true
			}
		}
	}
	return false
}

// ctxParams returns the function's context.Context parameters.
func ctxParams(info *types.Info, fd *ast.FuncDecl) []*types.Var {
	var out []*types.Var
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			if v, ok := info.Defs[name].(*types.Var); ok && isContextType(v.Type()) {
				out = append(out, v)
			}
		}
	}
	return out
}

// checkCtxParamUsed reports context parameters that the body never
// touches.
func checkCtxParamUsed(pass *Pass, fd *ast.FuncDecl) {
	params := ctxParams(pass.Pkg.Info, fd)
	if len(params) == 0 {
		return
	}
	used := make(map[*types.Var]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := pass.Pkg.Info.Uses[id].(*types.Var); ok {
				used[v] = true
			}
		}
		return true
	})
	for _, p := range params {
		if !used[p] {
			pass.Reportf("ctxcheck", fd.Name.Pos(),
				"%s accepts context.Context %q but never uses it; thread it through the blocking calls or drop the parameter", fd.Name.Name, p.Name())
		}
	}
}

// checkBlockingExported reports exported APIs that synchronously drain a
// transport Endpoint without accepting a context.
func checkBlockingExported(pass *Pass, fd *ast.FuncDecl) {
	if !fd.Name.IsExported() {
		return
	}
	if fd.Recv != nil {
		// Methods on unexported types are not API surface.
		if obj := receiverTypeName(pass.Pkg.Info, fd); obj != nil && !obj.Exported() {
			return
		}
		// An Endpoint-shaped Recv/Send method IS the blocking primitive
		// (transport.Endpoint cannot grow a ctx parameter without breaking
		// every implementation); wrappers like Flaky.Recv are exempt.
		if isEndpointPrimitive(pass.Pkg.Info, fd) {
			return
		}
	}
	if len(ctxParams(pass.Pkg.Info, fd)) > 0 {
		return
	}
	info := pass.Pkg.Info
	var blocking token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if blocking.IsValid() {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			// A Recv inside a spawned goroutine does not block this API.
			return false
		case *ast.CallExpr:
			if fn := methodCall(info, n, "Recv"); fn != nil {
				sig := fn.Type().(*types.Signature)
				if sig.Results().Len() >= 1 && isMessagePtr(sig.Results().At(0).Type()) {
					blocking = n.Pos()
					return false
				}
			}
		}
		return true
	})
	if blocking.IsValid() {
		pass.Reportf("ctxcheck", fd.Name.Pos(),
			"exported %s blocks on Endpoint.Recv (line %d) but accepts no context.Context; a dead peer wedges callers forever", fd.Name.Name, pass.Pkg.Fset.Position(blocking).Line)
	}
}

// isEndpointPrimitive reports whether fd is an implementation of the
// transport.Endpoint blocking primitives: Recv() (*Message, error) or
// Send(*Message) error.
func isEndpointPrimitive(info *types.Info, fd *ast.FuncDecl) bool {
	obj, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	switch fd.Name.Name {
	case "Recv":
		return sig.Params().Len() == 0 && sig.Results().Len() == 2 &&
			isMessagePtr(sig.Results().At(0).Type())
	case "Send":
		return sig.Params().Len() == 1 && isMessagePtr(sig.Params().At(0).Type())
	}
	return false
}

// receiverTypeName resolves the named type a method is declared on.
func receiverTypeName(info *types.Info, fd *ast.FuncDecl) *types.TypeName {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	tv, ok := info.Types[fd.Recv.List[0].Type]
	if !ok {
		return nil
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}
