// Package optimizer turns gradients into parameter updates on the worker
// side of the parameter server.
//
// In the PS architecture of Algorithm 1 the server applies w ← w + g/N,
// so what workers push is not the raw gradient but the already-scaled
// update delta = −lr·(…). An Optimizer therefore produces the delta a
// worker pushes; stateful optimizers (momentum, LARS) keep their state
// locally on the worker, exactly as the paper's Caffe workers do.
package optimizer

import (
	"fmt"

	"github.com/fluentps/fluentps/internal/keyrange"
	"github.com/fluentps/fluentps/internal/mathx"
)

// Optimizer converts a gradient into the update pushed to servers.
type Optimizer interface {
	// Name identifies the optimizer in experiment output.
	Name() string
	// Delta writes the parameter update (to be *added* to the model) into
	// delta given the current parameters and gradient. All three slices
	// have the model's full dimensionality.
	Delta(params, grad, delta []float64)
}

// SGD is plain stochastic gradient descent: delta = −LR·grad.
type SGD struct {
	LR float64
}

// Name implements Optimizer.
func (o *SGD) Name() string { return fmt.Sprintf("sgd(lr=%g)", o.LR) }

// Delta implements Optimizer.
func (o *SGD) Delta(_, grad, delta []float64) {
	for i, g := range grad {
		delta[i] = -o.LR * g
	}
}

// Momentum is SGD with heavyweight-ball momentum:
// v ← Mu·v + grad; delta = −LR·v.
type Momentum struct {
	LR, Mu float64
	vel    []float64
}

// Name implements Optimizer.
func (o *Momentum) Name() string { return fmt.Sprintf("momentum(lr=%g,mu=%g)", o.LR, o.Mu) }

// Delta implements Optimizer.
func (o *Momentum) Delta(_, grad, delta []float64) {
	if o.vel == nil {
		o.vel = make([]float64, len(grad))
	}
	for i, g := range grad {
		o.vel[i] = o.Mu*o.vel[i] + g
		delta[i] = -o.LR * o.vel[i]
	}
}

// LARS implements Layer-wise Adaptive Rate Scaling (You et al.), the
// optimizer the paper uses for large-batch training. Each layer (here:
// each parameter-server key) gets a local learning rate
//
//	local = Eta · ‖w_k‖ / (‖g_k‖ + WeightDecay·‖w_k‖)
//
// combined with momentum: v_k ← Mu·v_k + local·LR·(g_k + WeightDecay·w_k);
// delta_k = −v_k. Layers whose weights or gradients are all-zero fall
// back to the global rate.
type LARS struct {
	LR, Eta, Mu, WeightDecay float64
	Layout                   *keyrange.Layout
	vel                      []float64
}

// Name implements Optimizer.
func (o *LARS) Name() string {
	return fmt.Sprintf("lars(lr=%g,eta=%g,mu=%g,wd=%g)", o.LR, o.Eta, o.Mu, o.WeightDecay)
}

// Delta implements Optimizer.
func (o *LARS) Delta(params, grad, delta []float64) {
	if o.Layout == nil {
		panic("optimizer: LARS requires a layout to define its layers")
	}
	if o.vel == nil {
		o.vel = make([]float64, len(grad))
	}
	for k := 0; k < o.Layout.NumKeys(); k++ {
		key := keyrange.Key(k)
		off, sz := o.Layout.KeyOffset(key), o.Layout.KeySize(key)
		w := params[off : off+sz]
		g := grad[off : off+sz]
		v := o.vel[off : off+sz]
		d := delta[off : off+sz]

		wn, gn := mathx.Norm2(w), mathx.Norm2(g)
		local := 1.0
		if wn > 0 && gn > 0 {
			local = o.Eta * wn / (gn + o.WeightDecay*wn)
		}
		for i := range d {
			v[i] = o.Mu*v[i] + local*o.LR*(g[i]+o.WeightDecay*w[i])
			d[i] = -v[i]
		}
	}
}

// Reset clears stateful optimizer state; safe on stateless optimizers.
func Reset(o Optimizer) {
	switch t := o.(type) {
	case *Momentum:
		t.vel = nil
	case *LARS:
		t.vel = nil
	}
}
