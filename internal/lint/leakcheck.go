package lint

import (
	"go/ast"
	"go/token"
)

// leakcheck requires every goroutine started in library code to have a
// reachable shutdown edge. The failure shape it hunts: a `go` statement
// whose body spins in `for {}` with no return, no break, no select, and
// no channel operation — a goroutine that survives Server.Close and
// accumulates across elastic membership changes (PR 7's churn scenarios
// run thousands of start/stop cycles in one process).
//
// The check resolves the goroutine's target through the program index —
// `go s.feeder()` is analyzed at feeder's declaration — and walks every
// infinite for loop (no condition) in the body: the loop must contain,
// at any depth, a return, a break, a select, or a channel send/receive
// (including range-over-channel, which exits on close). Calls the index
// cannot resolve (stdlib, dynamic) pass — the analyzer only speaks to
// code it can see. Test-file findings warn instead of fail.

// LeakCheck returns the leakcheck analyzer.
func LeakCheck() *Analyzer {
	return &Analyzer{
		Name: "leakcheck",
		Doc:  "every goroutine in library code has a reachable shutdown edge (return, break, select, or channel op in its loops)",
		Run:  runLeakCheck,
	}
}

func runLeakCheck(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var body *ast.BlockStmt
			var target string
			if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
				body = lit.Body
				target = "literal"
			} else if pf := pass.Prog.CalleeFunc(info, gs.Call); pf != nil {
				body = pf.Decl.Body
				target = pf.Obj.Name()
			} else {
				return true
			}
			checkGoroutineBody(pass, gs.Pos(), target, body)
			return true
		})
	}
}

// checkGoroutineBody flags infinite loops without exit edges in body.
func checkGoroutineBody(pass *Pass, goPos token.Pos, target string, body *ast.BlockStmt) {
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		fs, ok := n.(*ast.ForStmt)
		if !ok || fs.Cond != nil {
			return true
		}
		if hasExitEdge(fs.Body) {
			return true
		}
		msg := "goroutine %s loops forever with no shutdown edge: add a return, break, select arm, or channel op so Close can stop it"
		if pass.Pkg.IsTestPos(goPos) {
			pass.Warnf("leakcheck", goPos, msg, target)
		} else {
			pass.Reportf("leakcheck", goPos, msg, target)
		}
		// One finding per goroutine is enough.
		return false
	})
}

// hasExitEdge reports whether block contains, at any depth, a statement
// that can end or unblock the enclosing infinite loop: return, break, a
// select (its arms are the shutdown hooks), or any channel operation
// (send, receive, or range over a channel — all release the goroutine
// when the peer closes).
func hasExitEdge(block *ast.BlockStmt) bool {
	found := false
	ast.Inspect(block, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its control flow is its own
		case *ast.ReturnStmt, *ast.SelectStmt, *ast.SendStmt:
			found = true
		case *ast.BranchStmt:
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				found = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			// range over anything is fine only for channels; other
			// ranges terminate on their own and do not unblock the
			// outer infinite loop — keep walking into the body.
		}
		return !found
	})
	return found
}
