package core

import (
	"fmt"
	"time"

	"github.com/fluentps/fluentps/internal/clusterview"
	"github.com/fluentps/fluentps/internal/keyrange"
	"github.com/fluentps/fluentps/internal/kvstore"
	"github.com/fluentps/fluentps/internal/mathx"
	"github.com/fluentps/fluentps/internal/syncmodel"
	"github.com/fluentps/fluentps/internal/transport"
	"github.com/fluentps/fluentps/internal/wire"
)

// Primary/backup shard replication.
//
// A primary with a backup (view.Replicas >= 2) forwards every applied
// wave of gradient work to its backup before acknowledging the pushes the
// wave consumed: the worker-visible contract becomes "acked ⇒ replicated".
// A wave carries the post-coalescing deltas of the apply engine (or a
// wave-of-one from the serial path), the sync-controller image (V_train,
// per-round counts, per-worker progress), and the (worker, seq) dedup
// pairs the wave consumed. The backup folds deltas into a passive replica
// shard and mirrors the dedup memory, so a promotion resumes with the
// exact V_train-consistent state plus enough retry memory that in-flight
// pushes replay idempotently.
//
// Waves are cumulative-acked; the primary resends unacked waves on its
// tick. A backup that lost sync (restart, missed snapshot, unknown key)
// NAKs, and the primary answers with a full snapshot — the same stream of
// keys/counters the checkpoint format captures, flattened into one wave.

// replSnapshotPairs bounds the per-worker dedup tail a snapshot carries.
const replSnapshotPairs = 128

// replPendingCap bounds the out-of-order waves a backup buffers while a
// gap fills.
const replPendingCap = 64

// ackRef is a push acknowledgement parked until its wave is replicated.
type ackRef struct {
	to  transport.NodeID
	seq uint64
}

// dedupPair is one consumed (worker, seq) a wave replicates.
type dedupPair struct {
	from transport.NodeID
	seq  uint64
}

// pendingWave is a sent-but-unacked replication wave.
type pendingWave struct {
	seq  uint64
	msg  *transport.Message // plain (non-pooled) so resends can reuse it
	acks []ackRef
	sent time.Time
}

// replState is the primary side of replication.
type replState struct {
	// backup is the server rank holding our replica, -1 when none.
	backup   int
	nextWave uint64
	waves    []*pendingWave
	// needSnapshot forces the next wave to be preceded by a full
	// snapshot: set at startup, on backup change, on NAK, and after a
	// migration changed the key set.
	needSnapshot bool
	// carryAcks are parked acks whose wave collapsed (backup change);
	// they ride on the next wave.
	carryAcks []ackRef
}

// replicaState is the backup side: one passive replica per primary whose
// backup this server is.
type replicaState struct {
	primary  int
	shard    *kvstore.Shard
	lastWave uint64
	// pending buffers cloned out-of-order waves while a gap fills.
	pending map[uint64]*transport.Message
	// img/spec mirror the primary's sync controller for promotion.
	img    syncmodel.ControllerImage
	spec   syncmodel.Spec
	specOK bool
	// pairs mirrors the primary's dedup windows per worker.
	pairs map[transport.NodeID]*dedupWindow
	// haveState is false until the first snapshot; deltas before it NAK.
	haveState bool
}

// replWave is a decoded replication wave.
type replWave struct {
	snapshot bool
	img      syncmodel.ControllerImage
	spec     syncmodel.Spec
	specOK   bool
	pairs    []dedupPair
	keys     []keyrange.Key
	// perKey holds, per key, the update-counter increment (delta wave) or
	// the absolute counter (snapshot).
	perKey []uint64
	// vals concatenates the per-key segments in keys order.
	vals []float64
}

// replActive reports whether this server currently replicates to a
// backup.
func (s *Server) replActive() bool { return s.repl != nil && s.repl.backup >= 0 }

// newWave starts a wave capturing the controller's current image.
func (s *Server) newWave(snapshot bool) *replWave {
	w := &replWave{snapshot: snapshot, img: s.ctrl.Image()}
	w.spec, w.specOK = s.ctrl.Spec()
	return w
}

// ackOrPark acknowledges a push immediately when nothing is pending
// replication, and otherwise parks the ack on the newest pending wave —
// a duplicate of a push whose wave is still unacked must not be re-acked
// before the wave lands, or a backup loss could forget an acked update.
func (s *Server) ackOrPark(to transport.NodeID, seq uint64) error {
	if s.replActive() && len(s.repl.waves) > 0 {
		last := s.repl.waves[len(s.repl.waves)-1]
		last.acks = append(last.acks, ackRef{to: to, seq: seq})
		return nil
	}
	return s.ack(transport.MsgPushAck, to, seq)
}

// replicatePush forwards one serial-path push as a wave of one. Dropped
// pushes (drop-stragglers models) still replicate: the controller state
// advanced and the dedup pair must reach the backup even when no delta
// applied.
func (s *Server) replicatePush(msg *transport.Message, applied bool) error {
	w := s.newWave(false)
	w.pairs = []dedupPair{{from: msg.From, seq: msg.Seq}}
	if applied {
		w.keys = append([]keyrange.Key(nil), msg.Keys...)
		w.perKey = make([]uint64, len(msg.Keys))
		for i := range w.perKey {
			w.perKey[i] = 1
		}
		scale := 1 / float64(s.cfg.NumWorkers)
		w.vals = make([]float64, len(msg.Vals))
		mathx.Axpy(scale, msg.Vals, w.vals)
	}
	return s.sendWave(w, []ackRef{{to: msg.From, seq: msg.Seq}})
}

// sendWave sends a delta wave, parking acks until it is acknowledged.
// When a snapshot is pending, the delta is NOT sent: the shard already
// contains the wave's applies, so the snapshot (gathered from live state)
// subsumes it — sending both would double-apply at the backup. The
// wave's dedup pairs are covered too (they were recorded before this
// call, so the snapshot's dedup tail carries them).
func (s *Server) sendWave(w *replWave, acks []ackRef) error {
	if s.repl.needSnapshot {
		s.repl.carryAcks = append(s.repl.carryAcks, acks...)
		return s.sendSnapshotWave()
	}
	return s.transmitWave(w, acks)
}

// sendSnapshotWave flattens the whole shard — keys, absolute update
// counters, values — plus a tail of each worker's dedup window into one
// snapshot wave. A snapshot subsumes every earlier wave, so their parked
// acks ride on it.
func (s *Server) sendSnapshotWave() error {
	s.repl.needSnapshot = false
	w := s.newWave(true)
	w.keys = append([]keyrange.Key(nil), s.keys...)
	w.perKey = make([]uint64, len(w.keys))
	for i, k := range w.keys {
		w.perKey[i] = s.shard.Updates(k)
	}
	var err error
	w.vals, err = s.shard.GatherShard(nil, w.keys)
	if err != nil {
		return fmt.Errorf("core: server %d gather snapshot: %w", s.cfg.Rank, err)
	}
	w.pairs = s.dedupTail(replSnapshotPairs)
	var acks []ackRef
	for _, pw := range s.repl.waves {
		acks = append(acks, pw.acks...)
	}
	s.repl.waves = s.repl.waves[:0]
	return s.transmitWave(w, acks)
}

// transmitWave encodes, registers, and sends a wave. Send failures are
// survivable — the tick resends.
func (s *Server) transmitWave(w *replWave, acks []ackRef) error {
	s.repl.nextWave++
	m := s.encodeWave(w)
	m.Seq = s.repl.nextWave
	if len(s.repl.carryAcks) > 0 {
		acks = append(s.repl.carryAcks, acks...)
		s.repl.carryAcks = nil
	}
	s.repl.waves = append(s.repl.waves, &pendingWave{seq: m.Seq, msg: m, acks: acks, sent: time.Now()})
	s.metrics.replicateWaves.Inc()
	_ = s.ep.Send(m)
	return nil
}

// dedupTail collects up to n of the newest consumed-push seqs per worker,
// so a promotion inherits enough retry memory to re-ack in-flight pushes.
func (s *Server) dedupTail(n int) []dedupPair {
	var out []dedupPair
	for id, w := range s.dedup {
		took := 0
		for i := len(w.order) - 1; i >= 0 && took < n; i-- {
			seq := w.order[i]
			if w.seen[seq] == dedupPushDone {
				out = append(out, dedupPair{from: id, seq: seq})
				took++
			}
		}
	}
	return out
}

// replTick drives the replication clock: pending snapshots go out, and
// waves unacked for longer than a controller tick are resent.
func (s *Server) replTick() error {
	if !s.replActive() {
		return nil
	}
	if s.repl.needSnapshot {
		if err := s.sendSnapshotWave(); err != nil {
			return err
		}
		return nil
	}
	if len(s.repl.waves) == 0 || time.Since(s.repl.waves[0].sent) < s.adaptEvery() {
		return nil
	}
	for _, pw := range s.repl.waves {
		pw.sent = time.Now()
		s.metrics.replicateResends.Inc()
		_ = s.ep.Send(pw.msg)
	}
	return nil
}

// handleReplicateAck processes the backup's cumulative ack, releasing the
// parked push acknowledgements of every wave it covers.
func (s *Server) handleReplicateAck(msg *transport.Message) error {
	if s.repl == nil || msg.From != transport.Server(s.repl.backup) {
		return nil
	}
	if msg.Progress < 0 {
		s.repl.needSnapshot = true
		return nil
	}
	kept := s.repl.waves[:0]
	for _, pw := range s.repl.waves {
		if pw.seq > msg.Seq {
			kept = append(kept, pw)
			continue
		}
		for _, a := range pw.acks {
			if err := s.ack(transport.MsgPushAck, a.to, a.seq); err != nil {
				return err
			}
		}
	}
	s.repl.waves = kept
	return nil
}

// releaseParkedAcks acknowledges everything parked — the view no longer
// gives this primary a backup, so replication is off and the pending
// waves' pushes are safe at replication factor 1.
func (s *Server) releaseParkedAcks() error {
	if s.repl == nil {
		return nil
	}
	for _, pw := range s.repl.waves {
		for _, a := range pw.acks {
			if err := s.ack(transport.MsgPushAck, a.to, a.seq); err != nil {
				return err
			}
		}
	}
	s.repl.waves = nil
	for _, a := range s.repl.carryAcks {
		if err := s.ack(transport.MsgPushAck, a.to, a.seq); err != nil {
			return err
		}
	}
	s.repl.carryAcks = nil
	return nil
}

// adoptReplicationRole reacts to a view change: the backup assignment may
// move (resnapshot), disappear (release parked acks), and replicas this
// server held for primaries it no longer backs are dropped.
func (s *Server) adoptReplicationRole(v *clusterview.View) error {
	if s.repl == nil {
		return nil
	}
	nb := v.BackupOf(s.cfg.Rank)
	if nb != s.repl.backup {
		s.repl.backup = nb
		if nb < 0 {
			if err := s.releaseParkedAcks(); err != nil {
				return err
			}
		} else {
			// Waves sent to the old backup can never be acked; their acks
			// ride on the fresh snapshot the new backup gets.
			for _, pw := range s.repl.waves {
				s.repl.carryAcks = append(s.repl.carryAcks, pw.acks...)
			}
			s.repl.waves = nil
			s.repl.needSnapshot = true
		}
	}
	for p := range s.replicas {
		if v.BackupOf(p) != s.cfg.Rank {
			delete(s.replicas, p)
		}
	}
	return nil
}

// encodeWave lays a wave into one replication frame:
//
//	vals: vtrain, specOK, 5×spec, nProgress, progress…,
//	      nCounts, (round, count)…, nPairs, (workerRank, seq)…,
//	      perKey counter per key, concatenated segments
//	keys: the wave's keys; Progress 1 marks a snapshot.
func (s *Server) encodeWave(w *replWave) *transport.Message {
	vals := make([]float64, 0,
		7+1+len(w.img.Progress)+1+2*len(w.img.Counts)+1+2*len(w.pairs)+len(w.perKey)+len(w.vals))
	vals = append(vals, float64(w.img.VTrain))
	if w.specOK {
		vals = append(vals, 1, float64(w.spec.Kind), float64(w.spec.S), w.spec.C,
			float64(w.spec.Min), float64(w.spec.Max))
	} else {
		vals = append(vals, 0, 0, 0, 0, 0, 0)
	}
	vals = append(vals, float64(len(w.img.Progress)))
	for _, p := range w.img.Progress {
		vals = append(vals, float64(p))
	}
	vals = append(vals, float64(len(w.img.Counts)))
	for round, n := range w.img.Counts {
		vals = append(vals, float64(round), float64(n))
	}
	vals = append(vals, float64(len(w.pairs)))
	for _, p := range w.pairs {
		vals = append(vals, float64(p.from.Rank), float64(p.seq))
	}
	for _, c := range w.perKey {
		vals = append(vals, float64(c))
	}
	vals = append(vals, w.vals...)
	m := &transport.Message{
		Type: transport.MsgReplicate,
		To:   transport.Server(s.repl.backup),
		View: s.epoch,
		Keys: w.keys,
		Vals: vals,
	}
	if w.snapshot {
		m.Progress = 1
	}
	return m
}

// decodeWave parses a replication frame back into a wave, validating
// every length against the layout.
func decodeWave(layout *keyrange.Layout, msg *transport.Message) (*replWave, error) {
	fail := func(what string) (*replWave, error) {
		return nil, fmt.Errorf("core: replication wave %d: truncated %s", msg.Seq, what)
	}
	vals := msg.Vals
	if len(vals) < 7 {
		return fail("header")
	}
	w := &replWave{snapshot: msg.Progress == 1}
	w.img.VTrain = int(vals[0])
	if vals[1] != 0 {
		w.specOK = true
		w.spec = syncmodel.Spec{
			Kind: syncmodel.Kind(vals[2]), S: int(vals[3]), C: vals[4],
			Min: int(vals[5]), Max: int(vals[6]),
		}
	}
	vals = vals[7:]
	nProgress, vals, ok := wire.ReadLen(vals, 1)
	if !ok {
		return fail("progress")
	}
	w.img.Progress = make([]int, nProgress)
	for i := range w.img.Progress {
		w.img.Progress[i] = int(vals[i])
	}
	vals = vals[nProgress:]
	nCounts, vals, ok := wire.ReadLen(vals, 2)
	if !ok {
		return fail("rounds")
	}
	w.img.Counts = make(map[int]int, nCounts)
	for i := 0; i < nCounts; i++ {
		w.img.Counts[int(vals[2*i])] = int(vals[2*i+1])
	}
	vals = vals[2*nCounts:]
	nPairs, vals, ok := wire.ReadLen(vals, 2)
	if !ok {
		return fail("pairs")
	}
	w.pairs = make([]dedupPair, nPairs)
	for i := range w.pairs {
		w.pairs[i] = dedupPair{from: transport.Worker(int(vals[2*i])), seq: uint64(vals[2*i+1])}
	}
	vals = vals[2*nPairs:]
	nKeys := len(msg.Keys)
	if len(vals) < nKeys {
		return fail("counters")
	}
	w.keys = append([]keyrange.Key(nil), msg.Keys...)
	w.perKey = make([]uint64, nKeys)
	for i := range w.perKey {
		w.perKey[i] = uint64(vals[i])
	}
	vals = vals[nKeys:]
	need := 0
	for _, k := range w.keys {
		if int(k) >= layout.NumKeys() {
			return nil, fmt.Errorf("core: replication wave %d: key %d outside layout", msg.Seq, k)
		}
		need += layout.KeySize(k)
	}
	if len(vals) != need {
		return nil, fmt.Errorf("core: replication wave %d: %d segment values, need %d", msg.Seq, len(vals), need)
	}
	w.vals = vals
	return w, nil
}

// handleReplicate is the backup side: in-order waves apply, gaps buffer,
// duplicates re-ack, and anything unapplicable NAKs for a snapshot.
func (s *Server) handleReplicate(msg *transport.Message) error {
	primary := int(msg.From.Rank)
	if msg.View != 0 && msg.View < s.epoch {
		// Zombie primary from a previous view; ignore silently.
		return nil
	}
	rs := s.replicas[primary]
	if rs == nil {
		rs = &replicaState{
			primary: primary,
			pending: make(map[uint64]*transport.Message),
			pairs:   make(map[transport.NodeID]*dedupWindow),
		}
		s.replicas[primary] = rs
	}
	snapshot := msg.Progress == 1
	if snapshot && rs.haveState && msg.Seq <= rs.lastWave {
		// A duplicated or reordered snapshot older than applied state must
		// not regress the replica.
		return s.replicaAck(primary, rs.lastWave, 0)
	}
	if !snapshot {
		switch {
		case !rs.haveState:
			return s.replicaAck(primary, rs.lastWave, -1)
		case msg.Seq <= rs.lastWave:
			return s.replicaAck(primary, rs.lastWave, 0)
		case msg.Seq > rs.lastWave+1:
			if len(rs.pending) < replPendingCap {
				if _, dup := rs.pending[msg.Seq]; !dup {
					rs.pending[msg.Seq] = msg.Clone()
				}
			}
			return s.replicaAck(primary, rs.lastWave, 0)
		}
	}
	if err := s.applyWaveMsg(rs, msg); err != nil {
		return s.replicaAck(primary, rs.lastWave, -1)
	}
	for {
		next, ok := rs.pending[rs.lastWave+1]
		if !ok {
			break
		}
		delete(rs.pending, next.Seq)
		if err := s.applyWaveMsg(rs, next); err != nil {
			return s.replicaAck(primary, rs.lastWave, -1)
		}
	}
	return s.replicaAck(primary, rs.lastWave, 0)
}

// applyWaveMsg folds one wave into the replica.
func (s *Server) applyWaveMsg(rs *replicaState, msg *transport.Message) error {
	w, err := decodeWave(s.cfg.Layout, msg)
	if err != nil {
		return err
	}
	if w.snapshot {
		shard := kvstore.NewStripedShard(s.cfg.Layout, nil, nil, 1)
		off := 0
		for i, k := range w.keys {
			size := s.cfg.Layout.KeySize(k)
			if err := shard.AddKey(k, w.vals[off:off+size]); err != nil {
				return err
			}
			if err := shard.SetWithUpdates(k, w.vals[off:off+size], w.perKey[i]); err != nil {
				return err
			}
			off += size
		}
		rs.shard = shard
		rs.haveState = true
		rs.pending = make(map[uint64]*transport.Message)
	} else {
		off := 0
		for i, k := range w.keys {
			size := s.cfg.Layout.KeySize(k)
			if err := rs.shard.ApplyDelta(k, w.vals[off:off+size], w.perKey[i]); err != nil {
				return err
			}
			off += size
		}
	}
	rs.img = w.img
	rs.spec, rs.specOK = w.spec, w.specOK
	for _, p := range w.pairs {
		win, ok := rs.pairs[p.from]
		if !ok {
			win = newDedupWindow(s.dedupCap())
			rs.pairs[p.from] = win
		}
		win.record(p.seq, dedupPushDone)
	}
	rs.lastWave = msg.Seq
	s.metrics.replicaWavesApplied.Inc()
	return nil
}

// replicaAck sends the backup's cumulative ack (or NAK, code < 0). The
// primary may be dead — that is the scenario replication exists for — so
// send failures are swallowed.
func (s *Server) replicaAck(primary int, lastWave uint64, code int32) error {
	out := &transport.Message{
		Type:     transport.MsgReplicateAck,
		To:       transport.Server(primary),
		Seq:      lastWave,
		Progress: code,
	}
	_ = s.ep.Send(out)
	return nil
}
